#include "verify/verifier.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "relational/op_specs.h"
#include "verify/timing.h"
#include "verify/typing.h"

namespace systolic {
namespace verify {
namespace {

using machine::OpKind;
using planner::DupFreeFact;
using planner::RewriteCertificate;

Status CertFail(const RewriteCertificate& cert, const std::string& what) {
  return VerifyError(std::string("certificates/") +
                         planner::RewriteCertificateKindToString(cert.kind),
                     cert.target, what);
}

bool SamePredicate(const arrays::SelectionPredicate& a,
                   const arrays::SelectionPredicate& b) {
  return a.column == b.column && a.op == b.op && a.constant == b.constant;
}

/// The verifier's own table of which operators deduplicate by construction
/// (§5 dedup/union/projection, §7 division) and which propagate a left
/// operand's duplicate-freedom (subsequence operators) — deliberately not
/// planner::AlwaysDuplicateFree, so a drifted table on either side trips
/// the proof check.
bool OpDeduplicates(OpKind op) {
  return op == OpKind::kRemoveDuplicates || op == OpKind::kUnion ||
         op == OpKind::kProject || op == OpKind::kDivide;
}

bool OpKeepsLeftSubsequence(OpKind op) {
  return op == OpKind::kSelect || op == OpKind::kIntersect ||
         op == OpKind::kDifference;
}

/// Re-checks a duplicate-freedom derivation: premises-first fact order,
/// every rule application justified by the verifier's own rule table, and
/// leaf facts cross-checked against the catalog's exact scans.
Status CheckDerivation(const RewriteCertificate& cert,
                       const std::vector<DupFreeFact>& facts,
                       const std::map<std::string, planner::InputInfo>& catalog,
                       VerifyReport* report) {
  if (facts.empty()) {
    return CertFail(cert, "duplicate-freedom claim carries no derivation");
  }
  std::set<std::string> proven;
  for (const DupFreeFact& fact : facts) {
    switch (fact.reason) {
      case DupFreeFact::Reason::kCatalog: {
        const auto it = catalog.find(fact.node);
        if (it == catalog.end()) {
          return CertFail(cert, "catalog fact about unknown input '" +
                                    fact.node + "'");
        }
        if (!it->second.duplicate_free) {
          return CertFail(cert, "catalog never proved input '" + fact.node +
                                    "' duplicate-free");
        }
        break;
      }
      case DupFreeFact::Reason::kOpGuarantee:
        if (!OpDeduplicates(fact.op)) {
          return CertFail(cert,
                          std::string(machine::OpKindToString(fact.op)) +
                              " does not deduplicate by construction, yet "
                              "the proof for '" +
                              fact.node + "' claims it does");
        }
        break;
      case DupFreeFact::Reason::kPropagatesLeft:
        if (!OpKeepsLeftSubsequence(fact.op)) {
          return CertFail(cert,
                          std::string(machine::OpKindToString(fact.op)) +
                              " does not keep a subsequence of its left "
                              "operand ('" +
                              fact.node + "')");
        }
        if (fact.premises.size() != 1 ||
            proven.count(fact.premises[0]) == 0) {
          return CertFail(cert, "fact about '" + fact.node +
                                    "' cites an unproven premise");
        }
        break;
      case DupFreeFact::Reason::kPropagatesBoth:
        if (fact.op != OpKind::kJoin) {
          return CertFail(cert, "two-operand propagation applies only to "
                                "joins, not " +
                                    std::string(
                                        machine::OpKindToString(fact.op)));
        }
        if (fact.premises.size() != 2 ||
            proven.count(fact.premises[0]) == 0 ||
            proven.count(fact.premises[1]) == 0) {
          return CertFail(cert, "join fact about '" + fact.node +
                                    "' cites unproven premises");
        }
        break;
    }
    proven.insert(fact.node);
    if (report != nullptr) ++report->dup_free_facts_checked;
  }
  return Status::OK();
}

/// Re-proves one kPushSelection certificate: every recorded column remap
/// must be the arithmetic the via operator's column map dictates.
Status CheckPushSelection(const RewriteCertificate& cert) {
  if (cert.remaps.size() != cert.outer_predicates.size() &&
      cert.via_op != OpKind::kSelect) {
    return CertFail(cert, "remap count " + std::to_string(cert.remaps.size()) +
                              " does not match the " +
                              std::to_string(cert.outer_predicates.size()) +
                              " pushed conjuncts");
  }
  switch (cert.via_op) {
    case OpKind::kSelect:
      // The vacuous push: a σ with no predicates elides; nothing to remap.
      if (!cert.outer_predicates.empty() || !cert.remaps.empty()) {
        return CertFail(cert, "a vacuous selection elision must carry no "
                              "predicates");
      }
      return Status::OK();
    case OpKind::kRemoveDuplicates:
    case OpKind::kIntersect:
    case OpKind::kDifference:
    case OpKind::kUnion:
      // Value-based masks: the conjunct reads the same column underneath.
      for (const RewriteCertificate::ColumnRemap& remap : cert.remaps) {
        if (remap.below != remap.above || remap.side != 0) {
          return CertFail(cert,
                          "pushing through " +
                              std::string(
                                  machine::OpKindToString(cert.via_op)) +
                              " must keep column " +
                              std::to_string(remap.above) + ", got " +
                              std::to_string(remap.below) + " on side " +
                              std::to_string(remap.side));
        }
      }
      return Status::OK();
    case OpKind::kProject:
      for (const RewriteCertificate::ColumnRemap& remap : cert.remaps) {
        if (remap.above >= cert.via_columns.size()) {
          return CertFail(cert, "remapped column " +
                                    std::to_string(remap.above) +
                                    " exceeds the projection's " +
                                    std::to_string(cert.via_columns.size()) +
                                    " columns");
        }
        if (remap.below != cert.via_columns[remap.above] || remap.side != 0) {
          return CertFail(cert, "projection maps column " +
                                    std::to_string(remap.above) + " to " +
                                    std::to_string(
                                        cert.via_columns[remap.above]) +
                                    ", certificate claims " +
                                    std::to_string(remap.below));
        }
      }
      return Status::OK();
    case OpKind::kDivide: {
      // Quotient columns: the dividend's non-divisor columns in order —
      // recomputed here from the recorded spec, not taken from the planner.
      std::vector<size_t> quotient;
      for (size_t c = 0; c < cert.arity_a; ++c) {
        if (std::find(cert.via_division.a_columns.begin(),
                      cert.via_division.a_columns.end(),
                      c) == cert.via_division.a_columns.end()) {
          quotient.push_back(c);
        }
      }
      for (const RewriteCertificate::ColumnRemap& remap : cert.remaps) {
        if (remap.above >= quotient.size()) {
          return CertFail(cert, "remapped column " +
                                    std::to_string(remap.above) +
                                    " exceeds the quotient's " +
                                    std::to_string(quotient.size()) +
                                    " columns");
        }
        if (remap.below != quotient[remap.above] || remap.side != 0) {
          return CertFail(cert, "division quotient maps column " +
                                    std::to_string(remap.above) + " to " +
                                    std::to_string(quotient[remap.above]) +
                                    ", certificate claims " +
                                    std::to_string(remap.below));
        }
      }
      return Status::OK();
    }
    case OpKind::kJoin: {
      // §6.1 output layout: A's columns first, then B's columns minus the
      // equi-join's dropped right join columns.
      std::vector<size_t> b_out_cols;
      const bool drop = cert.via_join.op == rel::ComparisonOp::kEq;
      for (size_t cb = 0; cb < cert.arity_b; ++cb) {
        const bool is_join_col =
            std::find(cert.via_join.right_columns.begin(),
                      cert.via_join.right_columns.end(),
                      cb) != cert.via_join.right_columns.end();
        if (drop && is_join_col) continue;
        b_out_cols.push_back(cb);
      }
      for (const RewriteCertificate::ColumnRemap& remap : cert.remaps) {
        if (remap.above < cert.arity_a) {
          if (remap.side != 0 || remap.below != remap.above) {
            return CertFail(cert, "join column " +
                                      std::to_string(remap.above) +
                                      " lies in A and must push unchanged "
                                      "to side 0");
          }
        } else {
          const size_t b_index = remap.above - cert.arity_a;
          if (b_index >= b_out_cols.size()) {
            return CertFail(cert, "join column " +
                                      std::to_string(remap.above) +
                                      " exceeds the join output's arity");
          }
          if (remap.side != 1 || remap.below != b_out_cols[b_index]) {
            return CertFail(cert, "join output column " +
                                      std::to_string(remap.above) +
                                      " originates from B column " +
                                      std::to_string(b_out_cols[b_index]) +
                                      ", certificate claims " +
                                      std::to_string(remap.below) +
                                      " on side " +
                                      std::to_string(remap.side));
          }
        }
      }
      return Status::OK();
    }
  }
  return CertFail(cert, "selection pushed through an unknown operator");
}

Status CheckCertificate(const RewriteCertificate& cert,
                        const std::map<std::string, planner::InputInfo>& catalog,
                        VerifyReport* report) {
  switch (cert.kind) {
    case RewriteCertificate::Kind::kMergeSelections: {
      // Conjunctions compose in application order: inner conjuncts first.
      if (cert.merged_predicates.size() !=
          cert.inner_predicates.size() + cert.outer_predicates.size()) {
        return CertFail(cert, "merged conjunction has " +
                                  std::to_string(
                                      cert.merged_predicates.size()) +
                                  " predicates, expected " +
                                  std::to_string(cert.inner_predicates.size() +
                                                 cert.outer_predicates.size()));
      }
      for (size_t k = 0; k < cert.merged_predicates.size(); ++k) {
        const arrays::SelectionPredicate& want =
            k < cert.inner_predicates.size()
                ? cert.inner_predicates[k]
                : cert.outer_predicates[k - cert.inner_predicates.size()];
        if (!SamePredicate(cert.merged_predicates[k], want)) {
          return CertFail(cert, "merged predicate " + std::to_string(k) +
                                    " is not the inner-then-outer "
                                    "composition");
        }
      }
      return Status::OK();
    }
    case RewriteCertificate::Kind::kPushSelection:
      return CheckPushSelection(cert);
    case RewriteCertificate::Kind::kPruneProjection: {
      if (cert.composed_columns.size() != cert.outer_columns.size()) {
        return CertFail(cert, "composed projection keeps " +
                                  std::to_string(
                                      cert.composed_columns.size()) +
                                  " columns, the outer kept " +
                                  std::to_string(cert.outer_columns.size()));
      }
      for (size_t k = 0; k < cert.outer_columns.size(); ++k) {
        if (cert.outer_columns[k] >= cert.inner_columns.size()) {
          return CertFail(cert, "outer projection column " +
                                    std::to_string(cert.outer_columns[k]) +
                                    " exceeds the inner's " +
                                    std::to_string(
                                        cert.inner_columns.size()) +
                                    " columns");
        }
        if (cert.composed_columns[k] !=
            cert.inner_columns[cert.outer_columns[k]]) {
          return CertFail(cert, "composed column " + std::to_string(k) +
                                    " must be inner[outer[" +
                                    std::to_string(k) + "]] = " +
                                    std::to_string(
                                        cert.inner_columns
                                            [cert.outer_columns[k]]) +
                                    ", got " +
                                    std::to_string(cert.composed_columns[k]));
        }
      }
      return Status::OK();
    }
    case RewriteCertificate::Kind::kElideIdentityProjection: {
      if (cert.outer_columns.size() != cert.identity_arity) {
        return CertFail(cert, "projection keeps " +
                                  std::to_string(cert.outer_columns.size()) +
                                  " of " +
                                  std::to_string(cert.identity_arity) +
                                  " columns — not the identity");
      }
      for (size_t k = 0; k < cert.outer_columns.size(); ++k) {
        if (cert.outer_columns[k] != k) {
          return CertFail(cert, "projection permutes column " +
                                    std::to_string(k) + " — not the "
                                    "identity");
        }
      }
      return CheckDerivation(cert, cert.dup_free_derivation, catalog, report);
    }
    case RewriteCertificate::Kind::kElideDedup:
      return CheckDerivation(cert, cert.dup_free_derivation, catalog, report);
    case RewriteCertificate::Kind::kReorderChain: {
      if (cert.chain_before.size() != cert.chain_after.size() ||
          cert.chain_before.size() != cert.chain_nodes.size() ||
          cert.chain_before.size() < 2) {
        return CertFail(cert, "reordered chain records mismatched or "
                              "trivial stage lists");
      }
      // The permuted (op, filter) pairs must be the same multiset: each
      // per-tuple mask applies exactly once, in some order.
      auto before = cert.chain_before;
      auto after = cert.chain_after;
      std::sort(before.begin(), before.end());
      std::sort(after.begin(), after.end());
      if (before != after) {
        return CertFail(cert, "reordered chain drops or duplicates a "
                              "membership filter");
      }
      // No filter may be a spine node of the chain itself: permuting such a
      // chain could schedule a filter after its consumer.
      const std::set<std::string> spine(cert.chain_nodes.begin(),
                                        cert.chain_nodes.end());
      for (const auto& [op, filter] : cert.chain_after) {
        if (op != OpKind::kIntersect && op != OpKind::kDifference) {
          return CertFail(cert, "chain stage is not a membership filter");
        }
        if (spine.count(filter) != 0) {
          return CertFail(cert, "filter '" + filter +
                                    "' is itself a chain node; the reorder "
                                    "is not legal");
        }
      }
      return Status::OK();
    }
  }
  return CertFail(cert, "unknown certificate kind");
}

}  // namespace

Status VerifyError(const std::string& pass, const std::string& node,
                   const std::string& what) {
  return Status::VerifyFailed("[" + pass + "] node '" + node + "': " + what);
}

std::string VerifyReport::ToString() const {
  std::ostringstream out;
  out << "verify: " << steps_typed << " steps typed, " << timing_steps
      << " schedules checked (" << tiles_checked << " tiles, " << exit_samples
      << " exit samples)";
  if (certificates_checked > 0 || dup_free_facts_checked > 0) {
    out << ", " << certificates_checked << " rewrite certificates re-proved";
  }
  return out.str();
}

Result<VerifyReport> VerifyTransaction(
    const machine::Transaction& txn,
    const std::map<std::string, InputStats>& inputs,
    const DeviceTable& devices, const VerifyOptions& options) {
  VerifyReport report;
  // Typing always runs: it produces the environment of worst-case
  // cardinalities the timing pass instantiates the §3.2/§8 invariants with.
  SYSTOLIC_ASSIGN_OR_RETURN(const auto env,
                            VerifyTyping(txn, inputs, &report));
  if (options.timing) {
    SYSTOLIC_RETURN_NOT_OK(VerifyTiming(txn, env, devices, &report));
  }
  return report;
}

Status VerifyCertificates(
    const std::vector<planner::RewriteCertificate>& certificates,
    const std::map<std::string, planner::InputInfo>& catalog,
    VerifyReport* report) {
  for (const RewriteCertificate& cert : certificates) {
    SYSTOLIC_RETURN_NOT_OK(CheckCertificate(cert, catalog, report));
    if (report != nullptr) ++report->certificates_checked;
  }
  return Status::OK();
}

Result<VerifyReport> VerifyPlannedTransaction(
    const planner::PlannedTransaction& planned,
    const std::map<std::string, planner::InputInfo>& catalog,
    const DeviceTable& devices) {
  VerifyReport report;
  SYSTOLIC_RETURN_NOT_OK(
      VerifyCertificates(planned.rewrites.certificates, catalog, &report));
  std::map<std::string, InputStats> inputs;
  for (const auto& [name, info] : catalog) {
    InputStats stats;
    stats.schema = info.schema;
    stats.num_tuples = info.num_tuples;
    stats.exact = true;  // the machine's memory modules ARE the catalog
    stats.duplicate_free = info.duplicate_free;
    inputs.emplace(name, std::move(stats));
  }
  SYSTOLIC_ASSIGN_OR_RETURN(
      VerifyReport txn_report,
      VerifyTransaction(planned.transaction, inputs, devices));
  txn_report.certificates_checked = report.certificates_checked;
  txn_report.dup_free_facts_checked = report.dup_free_facts_checked;
  return txn_report;
}

}  // namespace verify
}  // namespace systolic
