#ifndef SYSTOLIC_VERIFY_TYPING_H_
#define SYSTOLIC_VERIFY_TYPING_H_

#include <map>
#include <string>

#include "system/transaction.h"
#include "verify/verifier.h"

namespace systolic {
namespace verify {

/// The typing pass: re-derives a schema judgment for every step of `txn`
/// from the paper's §2 rules — union compatibility is "same column count,
/// corresponding columns drawn from the same underlying domain" (§2.4),
/// projection/selection columns must exist, order comparisons need ordered
/// domains, the divisor's compared columns must pair with dividend columns
/// sharing a domain and leave at least one quotient column (§7). The rules
/// here are written against rel::Schema accessors only; the engine's and
/// rel::Validate*'s own checks are deliberately not called, so this pass is
/// an independent second opinion.
///
/// On success returns the environment: catalog entries for every buffer,
/// inputs and step outputs alike, with derived outputs carrying worst-case
/// cardinality bounds (|σ(A)| <= |A|, |A ⋈ B| <= |A||B|, ...) for the
/// timing pass to instantiate. Rejects with kVerifyFailed ("[typing] node
/// '<output>': ...") on the first ill-typed step, unknown operand, duplicate
/// output name, or dependency cycle.
Result<std::map<std::string, InputStats>> VerifyTyping(
    const machine::Transaction& txn,
    const std::map<std::string, InputStats>& inputs, VerifyReport* report);

}  // namespace verify
}  // namespace systolic

#endif  // SYSTOLIC_VERIFY_TYPING_H_
