#include "verify/typing.h"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "relational/compare.h"
#include "relational/domain.h"

namespace systolic {
namespace verify {
namespace {

using machine::OpKind;
using machine::PlanStep;
using rel::Schema;

Status Fail(const std::string& node, const std::string& what) {
  return VerifyError("typing", node, what);
}

/// Saturating a*b and a+b: cardinality bounds, not exact counts, so
/// clamping at SIZE_MAX keeps the bound sound.
size_t SatMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<size_t>::max() / b) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}

size_t SatAdd(size_t a, size_t b) {
  if (a > std::numeric_limits<size_t>::max() - b) {
    return std::numeric_limits<size_t>::max();
  }
  return a + b;
}

/// §2.4 union compatibility, re-stated from the paper: equal column counts
/// and each column pair drawn from the SAME underlying domain (identity of
/// the Domain object, not merely the same value type).
Status CheckCompatible(const std::string& node, const Schema& a,
                       const Schema& b) {
  if (a.num_columns() != b.num_columns()) {
    return Fail(node, "operands are not union-compatible: " +
                          std::to_string(a.num_columns()) + " vs " +
                          std::to_string(b.num_columns()) + " columns (§2.4)");
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column(c).domain.get() != b.column(c).domain.get()) {
      return Fail(node, "column " + std::to_string(c) +
                            " pairs domains '" + a.column(c).domain->name() +
                            "' and '" + b.column(c).domain->name() +
                            "', which are distinct (§2.4)");
    }
  }
  return Status::OK();
}

/// Types one step whose operands are already in `env`, producing the
/// output's catalog entry. Each rule mirrors a paper judgment; row counts
/// are worst-case bounds (`exact` is never set on derived buffers).
Result<InputStats> TypeStep(const PlanStep& step, const InputStats& left,
                            const InputStats* right) {
  const std::string& node = step.output;
  InputStats out;
  out.exact = false;
  switch (step.op) {
    case OpKind::kIntersect:
    case OpKind::kDifference: {
      SYSTOLIC_RETURN_NOT_OK(CheckCompatible(node, left.schema,
                                             right->schema));
      out.schema = left.schema;
      out.num_tuples = left.num_tuples;  // a subsequence of A
      return out;
    }
    case OpKind::kUnion: {
      SYSTOLIC_RETURN_NOT_OK(CheckCompatible(node, left.schema,
                                             right->schema));
      out.schema = left.schema;
      out.num_tuples = SatAdd(left.num_tuples, right->num_tuples);
      return out;
    }
    case OpKind::kRemoveDuplicates: {
      if (left.schema.num_columns() == 0) {
        return Fail(node, "remove-duplicates needs at least one column");
      }
      out.schema = left.schema;
      out.num_tuples = left.num_tuples;
      return out;
    }
    case OpKind::kProject: {
      if (step.columns.empty()) {
        return Fail(node, "projection keeps no columns");
      }
      std::vector<rel::Column> kept;
      kept.reserve(step.columns.size());
      for (size_t c : step.columns) {
        if (c >= left.schema.num_columns()) {
          return Fail(node, "projection column " + std::to_string(c) +
                                " exceeds operand arity " +
                                std::to_string(left.schema.num_columns()));
        }
        kept.push_back(left.schema.column(c));
      }
      out.schema = Schema(std::move(kept));
      out.num_tuples = left.num_tuples;
      return out;
    }
    case OpKind::kSelect: {
      for (const arrays::SelectionPredicate& p : step.predicates) {
        if (p.column >= left.schema.num_columns()) {
          return Fail(node, "selection predicate column " +
                                std::to_string(p.column) +
                                " exceeds operand arity " +
                                std::to_string(left.schema.num_columns()));
        }
        if (!rel::IsEqualityOp(p.op) &&
            !left.schema.column(p.column).domain->ordered()) {
          return Fail(node, std::string("order comparison '") +
                                rel::ComparisonOpToString(p.op) +
                                "' on unordered domain '" +
                                left.schema.column(p.column).domain->name() +
                                "'");
        }
      }
      out.schema = left.schema;
      out.num_tuples = left.num_tuples;
      return out;
    }
    case OpKind::kJoin: {
      const rel::JoinSpec& spec = step.join;
      if (spec.left_columns.empty()) {
        return Fail(node, "join compares no column pairs");
      }
      if (spec.left_columns.size() != spec.right_columns.size()) {
        return Fail(node, "join column lists differ in length: " +
                              std::to_string(spec.left_columns.size()) +
                              " vs " +
                              std::to_string(spec.right_columns.size()));
      }
      for (size_t k = 0; k < spec.left_columns.size(); ++k) {
        const size_t ca = spec.left_columns[k];
        const size_t cb = spec.right_columns[k];
        if (ca >= left.schema.num_columns()) {
          return Fail(node, "left join column " + std::to_string(ca) +
                                " exceeds arity " +
                                std::to_string(left.schema.num_columns()));
        }
        if (cb >= right->schema.num_columns()) {
          return Fail(node, "right join column " + std::to_string(cb) +
                                " exceeds arity " +
                                std::to_string(right->schema.num_columns()));
        }
        const auto& da = left.schema.column(ca).domain;
        const auto& db = right->schema.column(cb).domain;
        if (da.get() != db.get()) {
          return Fail(node, "join pairs columns from distinct domains ('" +
                                da->name() + "' vs '" + db->name() + "')");
        }
        if (!rel::IsEqualityOp(spec.op) && !da->ordered()) {
          return Fail(node, std::string("θ-join comparison '") +
                                rel::ComparisonOpToString(spec.op) +
                                "' on unordered domain '" + da->name() + "'");
        }
      }
      // §6.1's |_{CA,CB}: for the equi-join, B's join columns are redundant
      // copies and are dropped; θ-joins keep both sides whole.
      std::vector<rel::Column> columns = left.schema.columns();
      const bool drop = spec.op == rel::ComparisonOp::kEq;
      for (size_t cb = 0; cb < right->schema.num_columns(); ++cb) {
        const bool is_join_column =
            std::find(spec.right_columns.begin(), spec.right_columns.end(),
                      cb) != spec.right_columns.end();
        if (drop && is_join_column) continue;
        columns.push_back(right->schema.column(cb));
      }
      out.schema = Schema(std::move(columns));
      out.num_tuples = SatMul(left.num_tuples, right->num_tuples);
      return out;
    }
    case OpKind::kDivide: {
      const rel::DivisionSpec& spec = step.division;
      if (spec.a_columns.empty()) {
        return Fail(node, "division compares no column pairs");
      }
      if (spec.a_columns.size() != spec.b_columns.size()) {
        return Fail(node, "division column lists differ in length: " +
                              std::to_string(spec.a_columns.size()) + " vs " +
                              std::to_string(spec.b_columns.size()));
      }
      std::set<size_t> a_seen;
      std::set<size_t> b_seen;
      for (size_t k = 0; k < spec.a_columns.size(); ++k) {
        const size_t ca = spec.a_columns[k];
        const size_t cb = spec.b_columns[k];
        if (ca >= left.schema.num_columns()) {
          return Fail(node, "dividend column " + std::to_string(ca) +
                                " exceeds arity " +
                                std::to_string(left.schema.num_columns()));
        }
        if (cb >= right->schema.num_columns()) {
          return Fail(node, "divisor column " + std::to_string(cb) +
                                " exceeds arity " +
                                std::to_string(right->schema.num_columns()));
        }
        if (!a_seen.insert(ca).second || !b_seen.insert(cb).second) {
          return Fail(node, "division spec repeats a column index");
        }
        const auto& da = left.schema.column(ca).domain;
        const auto& db = right->schema.column(cb).domain;
        if (da.get() != db.get()) {
          return Fail(node,
                      "division pairs columns from distinct domains ('" +
                          da->name() + "' vs '" + db->name() + "')");
        }
      }
      // §7: the divisor's compared columns must be a proper subset of the
      // dividend's — at least one quotient column must remain.
      if (spec.a_columns.size() >= left.schema.num_columns()) {
        return Fail(node, "division leaves no quotient columns (§7: the "
                          "divisor schema must be a proper subset of the "
                          "dividend's)");
      }
      std::vector<rel::Column> quotient;
      for (size_t c = 0; c < left.schema.num_columns(); ++c) {
        if (a_seen.count(c) == 0) quotient.push_back(left.schema.column(c));
      }
      out.schema = Schema(std::move(quotient));
      out.num_tuples = left.num_tuples;
      return out;
    }
  }
  return Fail(node, "unknown operator kind");
}

}  // namespace

Result<std::map<std::string, InputStats>> VerifyTyping(
    const machine::Transaction& txn,
    const std::map<std::string, InputStats>& inputs, VerifyReport* report) {
  std::map<std::string, InputStats> env = inputs;

  // Output names must be fresh: unique across the transaction and not
  // shadowing an input buffer.
  std::set<std::string> outputs;
  for (const PlanStep& step : txn.steps()) {
    if (step.output.empty()) {
      return Fail("(unnamed)", "step has no output buffer name");
    }
    if (!outputs.insert(step.output).second) {
      return Fail(step.output, "duplicate output buffer name");
    }
    if (inputs.count(step.output) != 0) {
      return Fail(step.output, "output shadows an input buffer");
    }
  }

  // Worklist typing: a step types once its operands are in the environment.
  // If a full sweep types nothing while steps remain, the remainder either
  // reads an unknown buffer or participates in a dependency cycle.
  std::vector<bool> typed(txn.steps().size(), false);
  size_t remaining = txn.steps().size();
  while (remaining > 0) {
    size_t progressed = 0;
    for (size_t i = 0; i < txn.steps().size(); ++i) {
      if (typed[i]) continue;
      const PlanStep& step = txn.steps()[i];
      const auto left_it = env.find(step.left);
      if (left_it == env.end()) continue;
      const bool binary = machine::IsBinaryOp(step.op);
      const auto right_it = binary ? env.find(step.right) : env.end();
      if (binary && right_it == env.end()) continue;
      SYSTOLIC_ASSIGN_OR_RETURN(
          InputStats out,
          TypeStep(step, left_it->second,
                   binary ? &right_it->second : nullptr));
      env.emplace(step.output, std::move(out));
      typed[i] = true;
      --remaining;
      ++progressed;
      if (report != nullptr) ++report->steps_typed;
    }
    if (progressed == 0) {
      for (size_t i = 0; i < txn.steps().size(); ++i) {
        if (typed[i]) continue;
        const PlanStep& step = txn.steps()[i];
        const char* which = env.count(step.left) == 0 ? "left" : "right";
        const std::string operand =
            env.count(step.left) == 0 ? step.left : step.right;
        if (outputs.count(operand) != 0) {
          return Fail(step.output,
                      "dependency cycle through operand '" + operand + "'");
        }
        return Fail(step.output, std::string(which) + " operand '" + operand +
                                     "' names no input or step output");
      }
    }
  }
  return env;
}

}  // namespace verify
}  // namespace systolic
