#ifndef SYSTOLIC_VERIFY_TIMING_H_
#define SYSTOLIC_VERIFY_TIMING_H_

#include <map>
#include <string>
#include <vector>

#include "arrays/comparison_grid.h"
#include "system/transaction.h"
#include "verify/verifier.h"

namespace systolic {
namespace verify {

/// One §8 tile of a step's decomposition: the block of (A-index, B-index)
/// pairs one device pass covers. `diagonal` marks a dedup tile comparing a
/// block against itself (edge rule kStrictLowerTriangle); other tiles seed
/// kAllTrue.
struct TileModel {
  size_t a_start = 0;
  size_t a_count = 0;
  size_t b_start = 0;
  size_t b_count = 0;
  bool diagonal = false;
};

/// The schedule IR one membership-family step implies: feed discipline,
/// stagger spacings, grid shape and the tile decomposition. Derived from the
/// step description and catalog cardinalities alone — never from the engine.
struct StepSchedule {
  size_t step_index = 0;
  machine::OpKind op = machine::OpKind::kIntersect;
  std::string output;
  arrays::FeedMode mode = arrays::FeedMode::kMarching;
  /// §3.2 stagger: successive tuples of A (resp. B) enter `spacing` pulses
  /// apart — 2 when both relations march, 1 for the streamed side of §8's
  /// fixed-B variant (B is preloaded: spacing_b == 0 then).
  size_t spacing_a = 2;
  size_t spacing_b = 2;
  /// Words compared per tuple pair (the wire width the device needs).
  size_t width = 0;
  /// Whether the step's semantics require the strict-lower-triangle initial
  /// t values of §5 (dedup family: dedup, union, projection) on diagonal
  /// tiles.
  bool dedup_family = false;
  size_t n_a = 0;  ///< Tuples of the streamed operand (worst case).
  size_t n_b = 0;  ///< Tuples of the other operand (worst case).
  std::vector<TileModel> tiles;
};

/// The timing pass. For every step it derives the StepSchedule above and
/// checks, independently of the engine's tiling code:
///
///   - wire width fits the device (§8 partitions over tuples, not columns);
///   - tiles cover the full |A| x |B| comparison space exactly once
///     (rectangular grid for ⋈/∩/−, the triangular block-pair grid for the
///     dedup family), by area accounting + alignment, not by replaying the
///     construction;
///   - the strict-lower-triangle initialisation appears exactly on the
///     dedup family's diagonal tiles (§5) and nowhere else;
///   - per tile, the §3.2 exit schedule: the pulse at which pair (i, j)'s
///     result leaves the grid is derived twice — once from the feed
///     equations (entry pulse + per-row march to the meeting row + word
///     serial comparison + commit) and once from the closed forms the
///     golden traces pin (i+j+m+(R-1)/2+1 marching, i+j+m+1 fixed-B) — and
///     both derivations must agree at the sampled tile corners;
///   - a pinned feed hint matches the §8 pulse model's choice when both
///     operand cardinalities are exact.
///
/// Selection steps are one-pass fixed devices (predicate count is the width
/// check); division's decomposition is data-dependent (first-occurrence key
/// ranks) and is checked only for its static facts. Rejects with
/// kVerifyFailed ("[timing] node '...': ...").
Status VerifyTiming(const machine::Transaction& txn,
                    const std::map<std::string, InputStats>& env,
                    const DeviceTable& devices, VerifyReport* report);

/// Exposed for tests: derives the schedule IR for step `index` (must be a
/// membership-family step) without checking it.
Result<StepSchedule> DeriveStepSchedule(
    const machine::Transaction& txn, size_t index,
    const std::map<std::string, InputStats>& env, const DeviceTable& devices);

/// Exposed for tests: checks one derived schedule (the per-step body of
/// VerifyTiming), so mutation tests can corrupt a StepSchedule field and
/// assert the named diagnostic.
Status CheckStepSchedule(const StepSchedule& schedule,
                         const db::DeviceConfig& device,
                         VerifyReport* report);

}  // namespace verify
}  // namespace systolic

#endif  // SYSTOLIC_VERIFY_TIMING_H_
