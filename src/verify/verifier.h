#ifndef SYSTOLIC_VERIFY_VERIFIER_H_
#define SYSTOLIC_VERIFY_VERIFIER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "planner/certificates.h"
#include "planner/physical.h"
#include "relational/schema.h"
#include "system/transaction.h"
#include "util/result.h"

/// DESIGN S22: the static plan/schedule verifier. Every check in this layer
/// re-derives its judgment from first principles — the paper's §2 typing
/// rules, the §3.2 timing discipline, the §8 decomposition — without calling
/// into the planner or engine code whose output it audits, so a bug on
/// either side surfaces as a kVerifyFailed diagnostic instead of a wrong
/// answer. Passes:
///
///   typing       — schema/arity/domain judgments for every plan step
///                  (verify/typing.h)
///   timing       — §3.2 stagger + exit-pulse invariants and §8 tile
///                  coverage on the schedule each step implies
///                  (verify/timing.h)
///   certificates — re-proof of the planner's rewrite legality certificates
///                  (VerifyCertificates below)
///   script-lint  — durability well-formedness of command scripts
///                  (verify/script_lint.h)
namespace systolic {
namespace verify {

/// Catalog facts about one buffer, as the verifier sees them. `exact` marks
/// external inputs whose cardinality the catalog knows precisely; derived
/// buffers carry upper bounds (the timing invariants hold for every n, so a
/// bound is enough to instantiate them).
struct InputStats {
  rel::Schema schema;
  size_t num_tuples = 0;
  bool exact = false;
  bool duplicate_free = false;
};

/// Device shapes by op kind, mirroring MachineConfig's device table without
/// depending on the system layer (which links against this library).
struct DeviceTable {
  db::DeviceConfig default_device;
  std::map<machine::OpKind, db::DeviceConfig> overrides;

  const db::DeviceConfig& For(machine::OpKind op) const {
    auto it = overrides.find(op);
    return it == overrides.end() ? default_device : it->second;
  }
};

/// What the verifier examined; printed by EXPLAIN/VERIFY and asserted on by
/// tests (a pass that silently checked nothing is a verifier bug).
struct VerifyReport {
  size_t steps_typed = 0;
  size_t timing_steps = 0;
  size_t tiles_checked = 0;
  size_t exit_samples = 0;
  size_t certificates_checked = 0;
  size_t dup_free_facts_checked = 0;

  /// "verify: N steps typed, ..." one-liner for the shell.
  std::string ToString() const;
};

struct VerifyOptions {
  bool typing = true;
  bool timing = true;
};

/// Every verifier diagnostic names the rejecting pass, the offending
/// node/step, and the violated invariant:
///   "[<pass>] node '<node>': <what>"
Status VerifyError(const std::string& pass, const std::string& node,
                   const std::string& what);

/// Runs the typing and timing passes over `txn` against catalog `inputs`.
/// Accepts iff every step type-checks and every implied device schedule
/// satisfies the paper's invariants; rejects with kVerifyFailed naming pass,
/// node and invariant.
Result<VerifyReport> VerifyTransaction(
    const machine::Transaction& txn,
    const std::map<std::string, InputStats>& inputs,
    const DeviceTable& devices, const VerifyOptions& options = {});

/// Re-proves each rewrite certificate with independently implemented rules:
/// predicate composition, column-remap arithmetic through π/÷/⋈ maps,
/// multiset permutation of membership chains, and duplicate-freedom
/// derivations cross-checked against the catalog. `catalog` supplies the
/// leaf duplicate-freedom facts (planner::InputInfo, as handed to the
/// planner itself).
Status VerifyCertificates(
    const std::vector<planner::RewriteCertificate>& certificates,
    const std::map<std::string, planner::InputInfo>& catalog,
    VerifyReport* report);

/// Convenience for the shell / CI: verifies a planned transaction end to end
/// — certificates against the planning catalog, then typing + timing of the
/// emitted transaction (catalog rows exact, as the §9 machine's memory
/// modules are the catalog).
Result<VerifyReport> VerifyPlannedTransaction(
    const planner::PlannedTransaction& planned,
    const std::map<std::string, planner::InputInfo>& catalog,
    const DeviceTable& devices);

}  // namespace verify
}  // namespace systolic

#endif  // SYSTOLIC_VERIFY_VERIFIER_H_
