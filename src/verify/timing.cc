#include "verify/timing.h"

#include <algorithm>
#include <limits>

#include "perfmodel/estimates.h"

namespace systolic {
namespace verify {
namespace {

using machine::OpKind;
using machine::PlanStep;

Status Fail(const std::string& node, const std::string& what) {
  return VerifyError("timing", node, what);
}

size_t SatAdd(size_t a, size_t b) {
  if (a > std::numeric_limits<size_t>::max() - b) {
    return std::numeric_limits<size_t>::max();
  }
  return a + b;
}

/// §8 block capacity, restated from the paper rather than taken from
/// perfmodel: marching blocks both operands to (rows+1)/2 so that a block
/// pair fits the 2n-1 rows its wavefronts sweep; the fixed-B variant
/// preloads one B tuple per row (block = rows) and streams all of A.
/// Unbounded (rows == 0) means no decomposition.
size_t BlockCap(arrays::FeedMode mode, bool bottom, size_t device_rows) {
  if (device_rows == 0) return std::numeric_limits<size_t>::max();
  if (mode == arrays::FeedMode::kFixedB) {
    return bottom ? device_rows : std::numeric_limits<size_t>::max();
  }
  return (device_rows + 1) / 2;
}

bool IsMembershipFamily(OpKind op) {
  switch (op) {
    case OpKind::kIntersect:
    case OpKind::kDifference:
    case OpKind::kRemoveDuplicates:
    case OpKind::kUnion:
    case OpKind::kProject:
    case OpKind::kJoin:
      return true;
    case OpKind::kSelect:
    case OpKind::kDivide:
      return false;
  }
  return false;
}

const char* ModeName(arrays::FeedMode mode) {
  return mode == arrays::FeedMode::kFixedB ? "fixed-B" : "marching";
}

/// Checks the §3.2 exit schedule of one tile at one sampled pair (i, j)
/// (block-local indices): derives the exit pulse from the feed equations and
/// independently from the closed form the golden traces pin, and rejects if
/// the two disagree or the meeting row falls off the grid.
Status CheckExitSample(const StepSchedule& s, const TileModel& tile,
                       size_t i, size_t j, size_t grid_rows) {
  const size_t m = s.width;
  if (s.mode == arrays::FeedMode::kMarching) {
    const size_t half = (grid_rows - 1) / 2;
    // Feed equations: word k of a_i enters row 0 at pulse 2i+k and marches
    // down one row per pulse; word k of b_j enters row R-1 at pulse 2j+k
    // and marches up. They share a cell where both arrival pulses match.
    const long long r_twice = 2 * (static_cast<long long>(j) -
                                   static_cast<long long>(i)) +
                              static_cast<long long>(grid_rows) - 1;
    if (r_twice % 2 != 0) {
      return Fail(s.output, "marching wavefronts of pair (" +
                                std::to_string(i) + "," + std::to_string(j) +
                                ") never share a cell (grid rows " +
                                std::to_string(grid_rows) + " is even)");
    }
    const long long r = r_twice / 2;
    if (r < 0 || r >= static_cast<long long>(grid_rows)) {
      return Fail(s.output, "meeting row " + std::to_string(r) + " of pair (" +
                                std::to_string(i) + "," + std::to_string(j) +
                                ") falls outside the " +
                                std::to_string(grid_rows) + "-row grid");
    }
    // A-side and B-side arrival pulses of the last word must agree.
    const size_t a_side = 2 * i + static_cast<size_t>(r) + (m - 1);
    const size_t b_side =
        2 * j + (grid_rows - 1 - static_cast<size_t>(r)) + (m - 1);
    if (a_side != b_side) {
      return Fail(s.output, "feed equations disagree for pair (" +
                                std::to_string(i) + "," + std::to_string(j) +
                                "): A-side pulse " + std::to_string(a_side) +
                                " vs B-side " + std::to_string(b_side));
    }
    // Latch + commit = 2 pulses after the last word arrives; the closed form
    // (§3.2, pinned by the golden traces) says i+j+m+(R-1)/2+1.
    const size_t derived = a_side + 2;
    const size_t closed = i + j + m + half + 1;
    if (derived != closed) {
      return Fail(s.output,
                  "exit pulse of pair (" + std::to_string(i) + "," +
                      std::to_string(j) + ") derives to " +
                      std::to_string(derived) + " from the feed schedule but " +
                      std::to_string(closed) + " from §3.2's closed form");
    }
    (void)tile;
    return Status::OK();
  }
  // Fixed-B: b_j preloaded in row j; word k of a_i enters row 0 at pulse
  // i+k (unit spacing) and reaches row j at pulse i+k+j.
  if (j >= grid_rows) {
    return Fail(s.output, "fixed-B tuple " + std::to_string(j) +
                              " has no grid row (grid has " +
                              std::to_string(grid_rows) + ")");
  }
  const size_t derived = i + j + (m - 1) + 2;
  const size_t closed = i + j + m + 1;
  if (derived != closed) {
    return Fail(s.output, "fixed-B exit pulse of pair (" + std::to_string(i) +
                              "," + std::to_string(j) + ") derives to " +
                              std::to_string(derived) + " but §8's form gives " +
                              std::to_string(closed));
  }
  return Status::OK();
}

}  // namespace

Result<StepSchedule> DeriveStepSchedule(
    const machine::Transaction& txn, size_t index,
    const std::map<std::string, InputStats>& env, const DeviceTable& devices) {
  if (index >= txn.steps().size()) {
    return Status::InvalidArgument("no step " + std::to_string(index));
  }
  const PlanStep& step = txn.steps()[index];
  if (!IsMembershipFamily(step.op)) {
    return Status::InvalidArgument(
        std::string(machine::OpKindToString(step.op)) +
        " implies no membership-grid schedule");
  }
  const auto left_it = env.find(step.left);
  if (left_it == env.end()) {
    return Status::NotFound("operand '" + step.left + "' not in environment");
  }
  const InputStats& left = left_it->second;
  const InputStats* right = nullptr;
  if (machine::IsBinaryOp(step.op)) {
    const auto right_it = env.find(step.right);
    if (right_it == env.end()) {
      return Status::NotFound("operand '" + step.right +
                              "' not in environment");
    }
    right = &right_it->second;
  }

  StepSchedule s;
  s.step_index = index;
  s.op = step.op;
  s.output = step.output;
  switch (step.op) {
    case OpKind::kIntersect:
    case OpKind::kDifference:
      s.n_a = left.num_tuples;
      s.n_b = right->num_tuples;
      s.width = left.schema.num_columns();
      s.dedup_family = false;
      break;
    case OpKind::kRemoveDuplicates:
      s.n_a = s.n_b = left.num_tuples;
      s.width = left.schema.num_columns();
      s.dedup_family = true;
      break;
    case OpKind::kUnion:
      // ∪ concatenates then deduplicates the combined stream against itself.
      s.n_a = s.n_b = SatAdd(left.num_tuples, right->num_tuples);
      s.width = left.schema.num_columns();
      s.dedup_family = true;
      break;
    case OpKind::kProject:
      // π narrows first, then deduplicates the narrowed stream.
      s.n_a = s.n_b = left.num_tuples;
      s.width = step.columns.size();
      s.dedup_family = true;
      break;
    case OpKind::kJoin:
      s.n_a = left.num_tuples;
      s.n_b = right->num_tuples;
      s.width = step.join.left_columns.size();
      s.dedup_family = false;
      break;
    default:
      return Status::InvalidArgument("not a membership-family op");
  }

  const db::DeviceConfig& device = devices.For(step.op);
  if (step.has_feed_hint) {
    s.mode = step.feed_hint;
  } else {
    switch (device.mode) {
      case arrays::FeedModePolicy::kMarching:
        s.mode = arrays::FeedMode::kMarching;
        break;
      case arrays::FeedModePolicy::kFixedB:
        s.mode = arrays::FeedMode::kFixedB;
        break;
      case arrays::FeedModePolicy::kAuto: {
        // The engine resolves kAuto by the §8 pulse model over one-column
        // passes; re-derive the same comparison here.
        const double fixed =
            perf::FixedBMembershipPulses(s.n_a, s.n_b, 1, device.rows);
        const double marching =
            perf::MarchingMembershipPulses(s.n_a, s.n_b, 1, device.rows);
        s.mode = fixed <= marching ? arrays::FeedMode::kFixedB
                                   : arrays::FeedMode::kMarching;
        break;
      }
    }
  }
  if (s.mode == arrays::FeedMode::kMarching) {
    s.spacing_a = 2;
    s.spacing_b = 2;
  } else {
    s.spacing_a = 1;
    s.spacing_b = 0;  // preloaded
  }

  // §8 tile decomposition over the worst-case operand sizes.
  if (s.n_a > 0) {
    if (s.dedup_family) {
      const size_t cap = std::min(BlockCap(s.mode, true, device.rows), s.n_a);
      for (size_t p = 0; p < s.n_a; p += cap) {
        for (size_t q = 0; q <= p; q += cap) {
          TileModel tile;
          tile.a_start = p;
          tile.a_count = std::min(cap, s.n_a - p);
          tile.b_start = q;
          tile.b_count = std::min(cap, s.n_a - q);
          tile.diagonal = q == p;
          s.tiles.push_back(tile);
        }
      }
    } else if (s.n_b > 0) {
      const size_t cap_a = std::min(BlockCap(s.mode, false, device.rows),
                                    s.n_a);
      const size_t cap_b = std::min(BlockCap(s.mode, true, device.rows),
                                    s.n_b);
      for (size_t ai = 0; ai < s.n_a; ai += cap_a) {
        for (size_t bi = 0; bi < s.n_b; bi += cap_b) {
          TileModel tile;
          tile.a_start = ai;
          tile.a_count = std::min(cap_a, s.n_a - ai);
          tile.b_start = bi;
          tile.b_count = std::min(cap_b, s.n_b - bi);
          s.tiles.push_back(tile);
        }
      }
    }
  }
  return s;
}

Status CheckStepSchedule(const StepSchedule& s, const db::DeviceConfig& device,
                         VerifyReport* report) {
  // Wire width: §8 partitions the result matrix over tuples, never over
  // columns, so the full comparison width must fit the device.
  if (s.width == 0) {
    return Fail(s.output, "schedule compares zero words per pair");
  }
  if (device.columns != 0 && s.width > device.columns) {
    return Fail(s.output, "wire width " + std::to_string(s.width) +
                              " exceeds the device's " +
                              std::to_string(device.columns) +
                              " columns (§8 partitions over tuples, not "
                              "columns)");
  }

  // §3.2 stagger: marching interleaves both operands at one tuple per two
  // pulses so every pair meets inside a cell; fixed-B streams A at unit
  // spacing past the preloaded B.
  if (s.mode == arrays::FeedMode::kMarching) {
    if (s.spacing_a != 2 || s.spacing_b != 2) {
      return Fail(s.output, "marching stagger must space both operands 2 "
                            "pulses apart (§3.2), got A=" +
                                std::to_string(s.spacing_a) + " B=" +
                                std::to_string(s.spacing_b));
    }
  } else {
    if (s.spacing_a != 1 || s.spacing_b != 0) {
      return Fail(s.output, "fixed-B stagger must stream A at unit spacing "
                            "over a preloaded B (§8), got A=" +
                                std::to_string(s.spacing_a) + " B=" +
                                std::to_string(s.spacing_b));
    }
  }

  // Tile sanity, disjointness and exact coverage — by area accounting over
  // the tile list itself, not by replaying the construction.
  unsigned long long covered = 0;
  for (const TileModel& t : s.tiles) {
    if (t.a_count == 0 || t.b_count == 0) {
      return Fail(s.output, "empty tile at (" + std::to_string(t.a_start) +
                                "," + std::to_string(t.b_start) + ")");
    }
    if (t.a_start + t.a_count > s.n_a || t.b_start + t.b_count > s.n_b) {
      return Fail(s.output, "tile at (" + std::to_string(t.a_start) + "," +
                                std::to_string(t.b_start) +
                                ") overruns the " + std::to_string(s.n_a) +
                                "x" + std::to_string(s.n_b) +
                                " comparison space");
    }
    if (t.diagonal && !s.dedup_family) {
      return Fail(s.output, "lower-triangle initialisation on a tile of a "
                            "non-dedup operator (§5 reserves it for "
                            "remove-duplicates and its derivatives)");
    }
    if (s.dedup_family) {
      if (t.a_start == t.b_start && !t.diagonal) {
        return Fail(s.output,
                    "diagonal tile at " + std::to_string(t.a_start) +
                        " lacks the §5 strict-lower-triangle initialisation");
      }
      if (t.a_start != t.b_start && t.diagonal) {
        return Fail(s.output, "off-diagonal tile at (" +
                                  std::to_string(t.a_start) + "," +
                                  std::to_string(t.b_start) +
                                  ") wrongly carries the lower-triangle "
                                  "initialisation");
      }
      if (t.diagonal && t.a_count != t.b_count) {
        return Fail(s.output, "diagonal tile compares blocks of unequal "
                              "sizes " +
                                  std::to_string(t.a_count) + " and " +
                                  std::to_string(t.b_count));
      }
      if (!t.diagonal && t.b_start + t.b_count > t.a_start) {
        // Off-diagonal dedup tiles rely on every pair having j < i
        // globally; a tile reaching at or above the diagonal would compare
        // pairs the kAllTrue seeding mislabels.
        return Fail(s.output, "off-diagonal tile at (" +
                                  std::to_string(t.a_start) + "," +
                                  std::to_string(t.b_start) +
                                  ") crosses the diagonal without the "
                                  "triangle rule");
      }
    }
    covered += t.diagonal
                   ? static_cast<unsigned long long>(t.a_count) *
                         (t.a_count - 1) / 2
                   : static_cast<unsigned long long>(t.a_count) * t.b_count;
  }
  // Disjointness by plane sweep over the A axis with an ordered set of
  // active B intervals. Tile counts grow quadratically in the catalog's
  // cardinality bounds (a bounded device tiling a join's |A||B| bound), so
  // the naive pairwise check would dominate plan time; the sweep is
  // O(T log T). At an open event every active tile's A range contains the
  // opening tile's a_start (closes sort first, so an abutting tile is gone),
  // hence any B intersection is a genuine two-dimensional overlap.
  struct SweepEvent {
    size_t coord = 0;
    bool open = false;
    size_t tile = 0;
  };
  std::vector<SweepEvent> events;
  events.reserve(2 * s.tiles.size());
  for (size_t x = 0; x < s.tiles.size(); ++x) {
    events.push_back({s.tiles[x].a_start, true, x});
    events.push_back({s.tiles[x].a_start + s.tiles[x].a_count, false, x});
  }
  std::sort(events.begin(), events.end(),
            [](const SweepEvent& a, const SweepEvent& b) {
              if (a.coord != b.coord) return a.coord < b.coord;
              return a.open < b.open;
            });
  std::map<size_t, std::pair<size_t, size_t>> active;  // b_start -> (end, tile)
  for (const SweepEvent& e : events) {
    const TileModel& t = s.tiles[e.tile];
    if (!e.open) {
      const auto it = active.find(t.b_start);
      if (it != active.end() && it->second.second == e.tile) active.erase(it);
      continue;
    }
    const size_t lo = t.b_start;
    const size_t hi = t.b_start + t.b_count;
    size_t clash = std::numeric_limits<size_t>::max();
    const auto next = active.lower_bound(lo);
    if (next != active.end() && next->first < hi) clash = next->second.second;
    if (clash == std::numeric_limits<size_t>::max() &&
        next != active.begin()) {
      const auto prev = std::prev(next);
      if (prev->second.first > lo) clash = prev->second.second;
    }
    if (clash != std::numeric_limits<size_t>::max()) {
      const TileModel& u = s.tiles[clash];
      return Fail(s.output, "tiles at (" + std::to_string(u.a_start) + "," +
                                std::to_string(u.b_start) + ") and (" +
                                std::to_string(t.a_start) + "," +
                                std::to_string(t.b_start) +
                                ") overlap: a pair would be compared "
                                "twice");
    }
    active.emplace(lo, std::make_pair(hi, e.tile));
  }
  const unsigned long long expected =
      s.dedup_family
          ? static_cast<unsigned long long>(s.n_a) * (s.n_a - (s.n_a ? 1 : 0)) /
                2
          : static_cast<unsigned long long>(s.n_a) * s.n_b;
  if (covered != expected) {
    return Fail(s.output, "tiles cover " + std::to_string(covered) +
                              " pairs of the " + std::to_string(expected) +
                              " the operation must compare (§8 coverage)");
  }

  // §3.2 exit-schedule cross-check at each tile's corners.
  for (const TileModel& t : s.tiles) {
    size_t grid_rows;
    if (s.mode == arrays::FeedMode::kMarching) {
      grid_rows = arrays::ComparisonGrid::RowsForMarching(
          std::max(t.a_count, t.b_count));
    } else {
      grid_rows = std::max<size_t>(1, t.b_count);
    }
    if (device.rows != 0 && grid_rows > device.rows) {
      return Fail(s.output, "tile at (" + std::to_string(t.a_start) + "," +
                                std::to_string(t.b_start) + ") needs " +
                                std::to_string(grid_rows) +
                                " grid rows but the device has " +
                                std::to_string(device.rows) +
                                " (§8 block capacity violated)");
    }
    const size_t i_corners[2] = {0, t.a_count - 1};
    const size_t j_corners[2] = {0, t.b_count - 1};
    for (size_t i : i_corners) {
      for (size_t j : j_corners) {
        SYSTOLIC_RETURN_NOT_OK(CheckExitSample(s, t, i, j, grid_rows));
        if (report != nullptr) ++report->exit_samples;
      }
    }
    if (report != nullptr) ++report->tiles_checked;
  }
  return Status::OK();
}

Status VerifyTiming(const machine::Transaction& txn,
                    const std::map<std::string, InputStats>& env,
                    const DeviceTable& devices, VerifyReport* report) {
  for (size_t index = 0; index < txn.steps().size(); ++index) {
    const PlanStep& step = txn.steps()[index];
    const db::DeviceConfig& device = devices.For(step.op);
    if (step.op == OpKind::kSelect) {
      // One-pass fixed device; the width check is the predicate count.
      if (device.columns != 0 && step.predicates.size() > device.columns) {
        return Fail(step.output,
                    "selection needs " +
                        std::to_string(step.predicates.size()) +
                        " predicate cells but the device has " +
                        std::to_string(device.columns) + " columns");
      }
      if (report != nullptr) ++report->timing_steps;
      continue;
    }
    if (step.op == OpKind::kDivide) {
      // The §7 decomposition groups by first-occurrence key rank — a
      // data-dependent partition with no static schedule to audit.
      if (report != nullptr) ++report->timing_steps;
      continue;
    }
    SYSTOLIC_ASSIGN_OR_RETURN(StepSchedule schedule,
                              DeriveStepSchedule(txn, index, env, devices));
    SYSTOLIC_RETURN_NOT_OK(CheckStepSchedule(schedule, device, report));

    // A pinned feed hint must match the §8 pulse model's choice when the
    // catalog knows both operand cardinalities exactly (the only case the
    // planner pins); re-derive the comparison the planner's cost model ran.
    if (step.has_feed_hint) {
      const auto left_it = env.find(step.left);
      const auto right_it = machine::IsBinaryOp(step.op)
                                ? env.find(step.right)
                                : left_it;
      const bool exact = left_it != env.end() && left_it->second.exact &&
                         right_it != env.end() && right_it->second.exact;
      if (exact) {
        const double fixed = perf::FixedBMembershipPulses(
            schedule.n_a, schedule.n_b, schedule.width, device.rows);
        const double marching = perf::MarchingMembershipPulses(
            schedule.n_a, schedule.n_b, schedule.width, device.rows);
        const arrays::FeedMode best = fixed <= marching
                                          ? arrays::FeedMode::kFixedB
                                          : arrays::FeedMode::kMarching;
        if (best != step.feed_hint) {
          return Fail(step.output,
                      std::string("feed hint pins ") +
                          ModeName(step.feed_hint) + " but the §8 pulse "
                          "model picks " + ModeName(best) + " (" +
                          std::to_string(fixed) + " vs " +
                          std::to_string(marching) + " pulses)");
        }
      }
    }
    if (report != nullptr) ++report->timing_steps;
  }
  return Status::OK();
}

}  // namespace verify
}  // namespace systolic
