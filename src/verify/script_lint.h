#ifndef SYSTOLIC_VERIFY_SCRIPT_LINT_H_
#define SYSTOLIC_VERIFY_SCRIPT_LINT_H_

#include <string>

#include "util/result.h"

namespace systolic {
namespace verify {

/// What the script lint walked, for the verify_plan tool's summary line.
struct ScriptLintReport {
  size_t lines = 0;
  size_t commands = 0;
  size_t transactions = 0;

  std::string ToString() const;
};

/// Statically lints a command-language script (system/command.h grammar)
/// without a machine: a line-by-line state machine tracking transaction
/// nesting, the open durable session and pending step outputs. Rejects with
/// kVerifyFailed ("line N: [script-lint] ...") on:
///
///   - unknown verbs or malformed argument shapes;
///   - BEGIN inside a transaction, COMMIT/ABORT/bare EXPLAIN outside one,
///     or a transaction left open at end of script;
///   - CHECKPOINT / SET DURABILITY with no prior OPEN (the durable session
///     they act on cannot exist);
///   - STORE / PRINT / RELEASE of a pending step's output inside an open
///     transaction — the buffer materialises only at COMMIT, and a durable
///     STORE there would persist a sink outside its atomic WAL group.
Result<ScriptLintReport> LintScript(const std::string& script);

}  // namespace verify
}  // namespace systolic

#endif  // SYSTOLIC_VERIFY_SCRIPT_LINT_H_
