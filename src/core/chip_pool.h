#ifndef SYSTOLIC_CORE_CHIP_POOL_H_
#define SYSTOLIC_CORE_CHIP_POOL_H_

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <optional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace systolic {
namespace db {

/// Health of one simulated chip, as tracked by ChipHealth.
enum class ChipState {
  kHealthy,      // no detected failures
  kSuspect,      // 1..strike_limit-1 consecutive detected failures
  kQuarantined,  // struck out or found dead; receives no more work
};

/// Canonical lower-case name ("healthy", "suspect", "quarantined").
const char* ChipStateToString(ChipState state);

/// Thread-safe health ledger for a device's chips.
///
/// The engine's fault-tolerant tile scheduler records a strike against a
/// chip for every detected failure (parity hit, invariant trip, stall) and
/// quarantines it after `strike_limit` consecutive strikes — or immediately
/// when the chip is found dead. A successful attempt clears the chip's
/// strikes: strikes count consecutive failures, so a chip suffering only
/// transient upsets is never quarantined as long as clean attempts keep
/// landing. Quarantined chips get no further work; the scheduler degrades
/// gracefully onto whatever remains, down to a single chip, and only errors
/// out when nothing usable is left.
class ChipHealth {
 public:
  ChipHealth(size_t num_chips, size_t strike_limit);

  size_t num_chips() const { return num_chips_; }
  size_t strike_limit() const { return strike_limit_; }

  ChipState state(size_t chip) const EXCLUDES(mutex_);
  size_t strikes(size_t chip) const EXCLUDES(mutex_);

  /// Chips not quarantined.
  size_t num_usable() const EXCLUDES(mutex_);
  /// Detected failures recorded so far, including on quarantined chips.
  size_t total_strikes() const EXCLUDES(mutex_);

  bool Usable(size_t chip) const EXCLUDES(mutex_);

  /// Records one detected failure; quarantines at the strike limit.
  /// Returns the chip's state after the strike.
  ChipState Strike(size_t chip) EXCLUDES(mutex_);

  /// A clean attempt on `chip`: forgives its accumulated strikes (strikes
  /// count consecutive failures). Quarantine is permanent — clearing a
  /// quarantined chip is a no-op.
  void ClearStrikes(size_t chip) EXCLUDES(mutex_);

  /// Immediate quarantine (dead chip).
  void Quarantine(size_t chip) EXCLUDES(mutex_);

  /// The chip work for `chip` should actually run on: `chip` itself when
  /// usable, else the next usable chip in cyclic order. nullopt when every
  /// chip is quarantined.
  std::optional<size_t> PreferredChip(size_t chip) const EXCLUDES(mutex_);

 private:
  /// Tile tasks strike/clear chips from pool worker threads, which hold NO
  /// other lock there (WorkerLoop drops the pool mutex around the task), so
  /// this ledger sits below kChipPool in the hierarchy (DESIGN §2.10).
  mutable util::Mutex mutex_{util::LockRank::kChipHealth, "chip-health"};
  size_t num_chips_;
  size_t strike_limit_;
  std::vector<size_t> strikes_ GUARDED_BY(mutex_);
  std::vector<bool> quarantined_ GUARDED_BY(mutex_);
};

/// A fixed pool of worker threads, one per simulated chip.
///
/// §8 of the paper partitions an oversized result matrix T "into sub-problems
/// small enough to fit on the array"; those sub-problems are mutually
/// independent, so a machine with several chips can run them at once. Each
/// worker of this pool plays one chip: the engine hands it tile passes, and
/// every pass builds its own private sim::Simulator (the array drivers
/// construct one per run), so chips share no simulation state.
///
/// The pool itself is policy-free: it executes a batch of independent tasks
/// and leaves all result placement to the caller, which is what lets the
/// engine merge per-tile results in tile order and stay bit-identical to the
/// serial path regardless of which chip finished first.
class ChipPool {
 public:
  /// Spawns `num_chips` workers (clamped to at least 1). Workers idle on a
  /// condition variable between batches.
  explicit ChipPool(size_t num_chips);

  /// Stops and joins all workers. Must not race an active RunAll.
  ~ChipPool();

  ChipPool(const ChipPool&) = delete;
  ChipPool& operator=(const ChipPool&) = delete;

  size_t num_chips() const { return threads_.size(); }

  /// Executes task(i, chip) exactly once for every i in [0, num_tasks), each
  /// call on some worker thread with that worker's chip index, and blocks
  /// until all calls returned. Tasks are claimed dynamically (earliest-free
  /// chip takes the next tile), so callers must write results only into
  /// per-task slots and merge after RunAll returns.
  ///
  /// If tasks throw, every task still runs to completion and the exception
  /// of the lowest-indexed throwing task is rethrown here — deterministic no
  /// matter which chip hit it first.
  ///
  /// Concurrent RunAll calls (sessions of the S24 server, or engine copies
  /// sharing one pool) interleave at TASK granularity rather than
  /// serialising: a free worker claims its next task round-robin across the
  /// active batches, so one session's thousand-tile pass cannot starve
  /// another session's two-tile pass, and each worker still plays exactly
  /// one chip at a time (chip exclusivity is what keeps per-chip fault
  /// trajectories deterministic).
  void RunAll(size_t num_tasks,
              const std::function<void(size_t task, size_t chip)>& task)
      EXCLUDES(mutex_);

 private:
  /// One in-flight RunAll. Owned (and erased) by its RunAll caller; workers
  /// may touch it only while it still has unfinished tasks.
  struct Batch {
    uint64_t id = 0;
    size_t num_tasks = 0;
    size_t next_task = 0;
    size_t completed = 0;
    const std::function<void(size_t, size_t)>* task = nullptr;
    std::vector<std::exception_ptr> exceptions;
  };

  void WorkerLoop(size_t chip) EXCLUDES(mutex_);
  /// The batch the next free worker should serve: the first batch with
  /// pending tasks whose id follows the last-served id, wrapping to the
  /// front.
  std::list<Batch>::iterator ClaimableBatchLocked() REQUIRES(mutex_);

  util::Mutex mutex_{util::LockRank::kChipPool, "chip-pool"};
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  bool stopping_ GUARDED_BY(mutex_) = false;
  uint64_t next_batch_id_ GUARDED_BY(mutex_) = 1;
  uint64_t last_served_ GUARDED_BY(mutex_) = 0;
  /// Active batches in submit order.
  std::list<Batch> batches_ GUARDED_BY(mutex_);

  /// Written only by the constructor, joined only by the destructor.
  std::vector<std::thread> threads_;
};

}  // namespace db
}  // namespace systolic

#endif  // SYSTOLIC_CORE_CHIP_POOL_H_
