#include "core/chip_pool.h"

#include <algorithm>

namespace systolic {
namespace db {

ChipPool::ChipPool(size_t num_chips) {
  const size_t n = std::max<size_t>(1, num_chips);
  threads_.reserve(n);
  for (size_t chip = 0; chip < n; ++chip) {
    threads_.emplace_back([this, chip] { WorkerLoop(chip); });
  }
}

ChipPool::~ChipPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ChipPool::RunAll(size_t num_tasks,
                      const std::function<void(size_t, size_t)>& task) {
  if (num_tasks == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &task;
  num_tasks_ = num_tasks;
  next_task_ = 0;
  completed_ = 0;
  exceptions_.assign(num_tasks, nullptr);
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return completed_ == num_tasks_; });
  task_ = nullptr;
  num_tasks_ = 0;
  next_task_ = 0;
  for (std::exception_ptr& e : exceptions_) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

void ChipPool::WorkerLoop(size_t chip) {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stopping_ || generation_ != seen_generation;
    });
    if (stopping_) return;
    seen_generation = generation_;
    while (next_task_ < num_tasks_) {
      const size_t index = next_task_++;
      const std::function<void(size_t, size_t)>* task = task_;
      std::exception_ptr error = nullptr;
      lock.unlock();
      try {
        (*task)(index, chip);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      exceptions_[index] = error;
      ++completed_;
      if (completed_ == num_tasks_) done_cv_.notify_all();
    }
  }
}

}  // namespace db
}  // namespace systolic
