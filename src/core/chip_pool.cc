#include "core/chip_pool.h"

#include <algorithm>

namespace systolic {
namespace db {

const char* ChipStateToString(ChipState state) {
  switch (state) {
    case ChipState::kHealthy:
      return "healthy";
    case ChipState::kSuspect:
      return "suspect";
    case ChipState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

ChipHealth::ChipHealth(size_t num_chips, size_t strike_limit)
    : num_chips_(std::max<size_t>(1, num_chips)),
      strike_limit_(std::max<size_t>(1, strike_limit)),
      strikes_(num_chips_, 0),
      quarantined_(num_chips_, false) {}

ChipState ChipHealth::state(size_t chip) const {
  util::MutexLock lock(&mutex_);
  if (quarantined_[chip]) return ChipState::kQuarantined;
  return strikes_[chip] == 0 ? ChipState::kHealthy : ChipState::kSuspect;
}

size_t ChipHealth::strikes(size_t chip) const {
  util::MutexLock lock(&mutex_);
  return strikes_[chip];
}

size_t ChipHealth::num_usable() const {
  util::MutexLock lock(&mutex_);
  size_t usable = 0;
  for (size_t chip = 0; chip < num_chips_; ++chip) {
    if (!quarantined_[chip]) ++usable;
  }
  return usable;
}

size_t ChipHealth::total_strikes() const {
  util::MutexLock lock(&mutex_);
  size_t total = 0;
  for (size_t strikes : strikes_) total += strikes;
  return total;
}

bool ChipHealth::Usable(size_t chip) const {
  util::MutexLock lock(&mutex_);
  return !quarantined_[chip];
}

ChipState ChipHealth::Strike(size_t chip) {
  util::MutexLock lock(&mutex_);
  ++strikes_[chip];
  if (strikes_[chip] >= strike_limit_) quarantined_[chip] = true;
  if (quarantined_[chip]) return ChipState::kQuarantined;
  return ChipState::kSuspect;
}

void ChipHealth::ClearStrikes(size_t chip) {
  util::MutexLock lock(&mutex_);
  if (!quarantined_[chip]) strikes_[chip] = 0;
}

void ChipHealth::Quarantine(size_t chip) {
  util::MutexLock lock(&mutex_);
  quarantined_[chip] = true;
}

std::optional<size_t> ChipHealth::PreferredChip(size_t chip) const {
  util::MutexLock lock(&mutex_);
  for (size_t offset = 0; offset < num_chips_; ++offset) {
    const size_t candidate = (chip + offset) % num_chips_;
    if (!quarantined_[candidate]) return candidate;
  }
  return std::nullopt;
}

ChipPool::ChipPool(size_t num_chips) {
  const size_t n = std::max<size_t>(1, num_chips);
  threads_.reserve(n);
  for (size_t chip = 0; chip < n; ++chip) {
    threads_.emplace_back([this, chip] { WorkerLoop(chip); });
  }
}

ChipPool::~ChipPool() {
  {
    util::MutexLock lock(&mutex_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ChipPool::RunAll(size_t num_tasks,
                      const std::function<void(size_t, size_t)>& task) {
  if (num_tasks == 0) return;
  util::MutexLock lock(&mutex_);
  const auto it = batches_.emplace(batches_.end());
  it->id = next_batch_id_++;
  it->num_tasks = num_tasks;
  it->task = &task;
  it->exceptions.assign(num_tasks, nullptr);
  work_cv_.NotifyAll();
  while (it->completed != it->num_tasks) done_cv_.Wait(&mutex_);
  std::vector<std::exception_ptr> exceptions = std::move(it->exceptions);
  batches_.erase(it);
  lock.Unlock();
  for (std::exception_ptr& e : exceptions) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

std::list<ChipPool::Batch>::iterator ChipPool::ClaimableBatchLocked() {
  std::list<Batch>::iterator first_pending = batches_.end();
  for (auto it = batches_.begin(); it != batches_.end(); ++it) {
    if (it->next_task >= it->num_tasks) continue;
    if (first_pending == batches_.end()) first_pending = it;
    if (it->id > last_served_) return it;
  }
  return first_pending;  // wrap to the oldest pending batch
}

void ChipPool::WorkerLoop(size_t chip) {
  util::MutexLock lock(&mutex_);
  for (;;) {
    while (!stopping_ && ClaimableBatchLocked() == batches_.end()) {
      work_cv_.Wait(&mutex_);
    }
    if (stopping_) return;
    const auto it = ClaimableBatchLocked();
    if (it == batches_.end()) continue;  // another worker drained it
    last_served_ = it->id;
    Batch& batch = *it;
    const size_t index = batch.next_task++;
    const std::function<void(size_t, size_t)>* task = batch.task;
    std::exception_ptr error = nullptr;
    lock.Unlock();
    try {
      (*task)(index, chip);
    } catch (...) {
      error = std::current_exception();
    }
    lock.Lock();
    // The batch outlives this unlock: its RunAll owner cannot observe
    // completed == num_tasks — and so cannot erase it — before the
    // increment below.
    batch.exceptions[index] = error;
    ++batch.completed;
    if (batch.completed == batch.num_tasks) done_cv_.NotifyAll();
  }
}

}  // namespace db
}  // namespace systolic
