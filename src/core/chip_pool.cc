#include "core/chip_pool.h"

#include <algorithm>

namespace systolic {
namespace db {

const char* ChipStateToString(ChipState state) {
  switch (state) {
    case ChipState::kHealthy:
      return "healthy";
    case ChipState::kSuspect:
      return "suspect";
    case ChipState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

ChipHealth::ChipHealth(size_t num_chips, size_t strike_limit)
    : num_chips_(std::max<size_t>(1, num_chips)),
      strike_limit_(std::max<size_t>(1, strike_limit)),
      strikes_(num_chips_, 0),
      quarantined_(num_chips_, false) {}

ChipState ChipHealth::state(size_t chip) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_[chip]) return ChipState::kQuarantined;
  return strikes_[chip] == 0 ? ChipState::kHealthy : ChipState::kSuspect;
}

size_t ChipHealth::strikes(size_t chip) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return strikes_[chip];
}

size_t ChipHealth::num_usable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t usable = 0;
  for (size_t chip = 0; chip < num_chips_; ++chip) {
    if (!quarantined_[chip]) ++usable;
  }
  return usable;
}

size_t ChipHealth::total_strikes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (size_t strikes : strikes_) total += strikes;
  return total;
}

bool ChipHealth::Usable(size_t chip) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !quarantined_[chip];
}

ChipState ChipHealth::Strike(size_t chip) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++strikes_[chip];
  if (strikes_[chip] >= strike_limit_) quarantined_[chip] = true;
  if (quarantined_[chip]) return ChipState::kQuarantined;
  return ChipState::kSuspect;
}

void ChipHealth::ClearStrikes(size_t chip) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!quarantined_[chip]) strikes_[chip] = 0;
}

void ChipHealth::Quarantine(size_t chip) {
  std::lock_guard<std::mutex> lock(mutex_);
  quarantined_[chip] = true;
}

std::optional<size_t> ChipHealth::PreferredChip(size_t chip) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t offset = 0; offset < num_chips_; ++offset) {
    const size_t candidate = (chip + offset) % num_chips_;
    if (!quarantined_[candidate]) return candidate;
  }
  return std::nullopt;
}

ChipPool::ChipPool(size_t num_chips) {
  const size_t n = std::max<size_t>(1, num_chips);
  threads_.reserve(n);
  for (size_t chip = 0; chip < n; ++chip) {
    threads_.emplace_back([this, chip] { WorkerLoop(chip); });
  }
}

ChipPool::~ChipPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ChipPool::RunAll(size_t num_tasks,
                      const std::function<void(size_t, size_t)>& task) {
  if (num_tasks == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &task;
  num_tasks_ = num_tasks;
  next_task_ = 0;
  completed_ = 0;
  exceptions_.assign(num_tasks, nullptr);
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return completed_ == num_tasks_; });
  task_ = nullptr;
  num_tasks_ = 0;
  next_task_ = 0;
  for (std::exception_ptr& e : exceptions_) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

void ChipPool::WorkerLoop(size_t chip) {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stopping_ || generation_ != seen_generation;
    });
    if (stopping_) return;
    seen_generation = generation_;
    while (next_task_ < num_tasks_) {
      const size_t index = next_task_++;
      const std::function<void(size_t, size_t)>* task = task_;
      std::exception_ptr error = nullptr;
      lock.unlock();
      try {
        (*task)(index, chip);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      exceptions_[index] = error;
      ++completed_;
      if (completed_ == num_tasks_) done_cv_.notify_all();
    }
  }
}

}  // namespace db
}  // namespace systolic
