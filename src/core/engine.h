#ifndef SYSTOLIC_CORE_ENGINE_H_
#define SYSTOLIC_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arrays/comparison_grid.h"
#include "arrays/membership.h"
#include "arrays/selection_array.h"
#include "core/chip_pool.h"
#include "fastpath/backend.h"
#include "faults/fault_plan.h"
#include "relational/op_specs.h"
#include "relational/relation.h"
#include "system/scratchpad/scratchpad.h"
#include "util/result.h"

namespace systolic {
namespace db {

/// Describes the physical systolic device the engine drives — the "fixed
/// sizes of systolic arrays" of §9 that force large relations to be
/// decomposed.
struct DeviceConfig {
  /// Physical grid rows. 0 = unbounded: each operation auto-sizes a grid
  /// that fits its operands in one pass (no tiling).
  size_t rows = 0;
  /// Physical grid columns (elements compared per tuple). 0 = unbounded.
  /// Operands wider than this are rejected with Capacity: the paper's
  /// decomposition partitions the result matrix T over tuples, not over
  /// columns (§8).
  size_t columns = 0;
  /// Feed discipline: §3's marching arrays, §8's fixed-B variant, or kAuto
  /// to let the engine pick per operation by modeled total pulse count.
  arrays::FeedModePolicy mode = arrays::FeedModePolicy::kMarching;
  /// Identical chips driven in parallel. §8's decomposition produces
  /// mutually independent (row-tile, col-tile) sub-problems; with more than
  /// one chip the engine dispatches them across a worker pool (one simulated
  /// device per worker) and merges per-tile results in tile order, so output
  /// and summed statistics are bit-identical to the serial path. 1 (the
  /// default) preserves today's serial execution exactly; 0 is treated as 1.
  size_t num_chips = 1;
  /// Deterministic fault-injection plan; null (the default) models perfect
  /// hardware and costs nothing. With a plan installed, logical chip c runs
  /// every pass under plan->chip(c)'s fault profile inside a detection scope
  /// (bus parity + valid-strobe monitoring + recoverable invariant checks),
  /// and the engine retries detected failures per `recovery`.
  std::shared_ptr<const faults::FaultPlan> faults;
  /// Retry/quarantine policy; consulted only when `faults` is set.
  faults::RecoveryOptions recovery;
  /// Which executor runs the tile passes. kRtl (the default) pulses the
  /// cycle-accurate simulator; kFast computes identical tile results with
  /// the packed kernels of src/fastpath and reports analytic cycle counts;
  /// kAuto means fast whenever pulse-level fidelity is not required. Both
  /// fast policies fall back to the RTL simulator while `faults` is
  /// installed (injection corrupts individual pulses, which only the
  /// simulator models). Surfaced in the shell as `SET BACKEND`.
  fastpath::BackendPolicy backend = fastpath::BackendPolicy::kRtl;
  /// Whether each chip's scratchpad/DMA layer double-buffers tile operand
  /// feeds (S25): with overlap on, tile N+1's mvin streams into the idle
  /// bank while tile N computes and tile N−1's mvout drains; off serialises
  /// load→compute→drain per tile. Purely a memory-timing model: results and
  /// the compute-only `cycles`/`makespan_cycles` are identical either way;
  /// only the dma_*/memory_makespan counters move. kAuto resolves to on.
  /// Surfaced in the shell as `SET MEMORY overlap=...`.
  spad::OverlapPolicy overlap = spad::OverlapPolicy::kAuto;
};

/// Byte traffic of one tile's scratchpad feed, recorded by the tile task and
/// costed into the per-chip DMA schedule: `in_a` streams through mvin,
/// `in_b` through preload (0 when the tile reuses an already-staged block),
/// `out` drains through mvout.
struct TileTraffic {
  double in_a = 0;
  double in_b = 0;
  double out = 0;
};

/// Aggregate execution statistics for one engine operation, summed over all
/// tiled passes.
struct ExecStats {
  /// Device passes executed (1 when no tiling was needed).
  size_t passes = 0;
  /// The feed discipline the engine resolved for this operation (meaningful
  /// for the membership/join families; selection always streams fixed).
  arrays::FeedMode resolved_mode = arrays::FeedMode::kMarching;
  /// Which executor ran the operation's passes (the device's backend policy
  /// resolved per Engine::ResolveBackend).
  fastpath::Backend backend = fastpath::Backend::kRtl;
  /// True iff `cycles`/`makespan_cycles` were derived from the closed-form
  /// timing model (fast path) rather than measured from the simulator. The
  /// counts are equal either way — the fast path's analytic contract — but
  /// analytic passes pulse no cells, so the cell-utilisation ratios below
  /// are meaningless and defined as 0.
  bool analytic_timing = false;
  /// Total pulses across passes (the cost if every pass serialised).
  size_t cycles = 0;
  /// Critical-path pulses across the device's chips: the makespan of the
  /// deterministic tile-order greedy schedule (each pass goes to the chip
  /// that frees up first) over the per-pass pulse counts. Equals `cycles`
  /// when num_chips == 1; with C chips on balanced tiles it approaches
  /// cycles / C.
  size_t makespan_cycles = 0;
  /// Total busy cell-pulses and cell count (max across passes).
  size_t busy_cell_cycles = 0;
  size_t num_compute_cells = 0;
  /// Chips the operation's tiles were spread across (the engine's
  /// num_chips()); denominator of MakespanUtilization().
  size_t num_chips = 1;
  /// Fault-tolerance counters; all stay zero without a fault plan.
  /// Tile attempts that failed detection (parity hits, invariant trips,
  /// stalls, dead-chip refusals).
  size_t faults_detected = 0;
  /// Tile attempts beyond each tile's first (every retry runs on the next
  /// usable chip in cyclic order).
  size_t tile_retries = 0;
  /// Shadow re-executions sampled for checksum cross-checking, and how many
  /// of them disagreed with the primary run.
  size_t shadow_runs = 0;
  size_t shadow_mismatches = 0;
  /// Chips not quarantined when the operation finished; equals num_chips on
  /// healthy hardware.
  size_t healthy_chips = 1;
  /// Durability counters, stamped by the command layer when a durable
  /// directory is open (cumulative per session); all stay zero otherwise.
  /// WAL mutation records fsync'd so far.
  size_t wal_records = 0;
  /// Atomic checkpoints completed so far.
  size_t checkpoints = 0;
  /// WAL records replayed by the session's crash recovery on OPEN.
  size_t recovered_records = 0;
  /// Scratchpad/DMA counters (S25), derived from the same deterministic
  /// greedy tile→chip schedule as `makespan_cycles`, so they are identical
  /// across backends and across serial/parallel dispatch.
  /// Transfer pulses (mvin + preload + mvout) summed over every tile.
  size_t dma_cycles = 0;
  /// Pulses the double-buffered schedule hid relative to full
  /// load→compute→drain serialisation, summed over chips; 0 with overlap
  /// off.
  size_t overlap_cycles = 0;
  /// Memory-inclusive critical path: the max over chips of each chip's DMA
  /// schedule makespan (compute + un-hidden transfer pulses), summed over
  /// tile batches like `makespan_cycles`. With overlap off this is exactly
  /// makespan_cycles + dma_cycles on one chip.
  size_t memory_makespan_cycles = 0;
  /// Whether the operation's tile feeds were double-buffered.
  bool overlap_enabled = false;
  /// The per-chip DMA schedules, chips in order then commands in queue
  /// order — the golden-trace diff surface. Chip-local pulse timestamps.
  std::vector<spad::DmaEvent> dma_trace;

  /// Serial utilisation: busy cell-pulses over cells × summed pulses
  /// (`cycles`). Denominator = the cell-pulses ONE chip offers when it runs
  /// every pass back to back, so this measures how busy the array fabric is
  /// within the passes themselves, independent of multi-chip parallelism.
  /// (Under multi-chip runs it is NOT a wall-clock utilisation — use
  /// MakespanUtilization() for that.)
  double Utilization() const {
    // Analytic (fast-path) passes simulate no pulses: dividing busy cells
    // by analytic cycle counts would be a category error, so — like the
    // zero-makespan guard below — the ratio is defined as 0.
    if (analytic_timing) return 0.0;
    const double denom = static_cast<double>(num_compute_cells) *
                         static_cast<double>(cycles);
    return denom == 0 ? 0.0 : static_cast<double>(busy_cell_cycles) / denom;
  }

  /// Wall-clock utilisation: busy cell-pulses over cells × makespan pulses ×
  /// chips. Denominator = the cell-pulses the whole device (all chips) offers
  /// during the operation's critical path, so idle chips and tile imbalance
  /// count against it. Equal to Utilization() when num_chips == 1.
  double MakespanUtilization() const {
    if (analytic_timing) return 0.0;
    const double denom = static_cast<double>(num_compute_cells) *
                         static_cast<double>(makespan_cycles) *
                         static_cast<double>(num_chips == 0 ? 1 : num_chips);
    return denom == 0 ? 0.0 : static_cast<double>(busy_cell_cycles) / denom;
  }

  /// Fraction of the memory-inclusive critical path spent computing:
  /// makespan_cycles / memory_makespan_cycles. Overlap hides transfer
  /// pulses behind compute, so on → closer to 1, off → the §9 pipelining
  /// bubble shows up as the gap. Valid for analytic (fast-path) timing too
  /// — both counters are schedule-model quantities, not simulator
  /// measurements. 0 when no DMA accounting ran.
  double MemoryMakespanUtilization() const {
    return memory_makespan_cycles == 0
               ? 0.0
               : static_cast<double>(makespan_cycles) /
                     static_cast<double>(memory_makespan_cycles);
  }

  void AccumulatePass(const arrays::ArrayRunInfo& info);
};

/// Result of one engine operation.
struct EngineResult {
  rel::Relation relation;
  ExecStats stats;

  explicit EngineResult(rel::Relation r) : relation(std::move(r)) {}
};

/// The end-user entry point: runs every relational operation of the paper on
/// a (simulated) systolic device, transparently decomposing operands that
/// exceed the device capacity into sub-problems, exactly as §8 prescribes
/// ("one can simply partition this matrix into sub-problems small enough to
/// fit on the array").
///
/// Semantics match the reference implementations in
/// relational/ops_reference.h; outputs preserve first-operand order.
class Engine {
 public:
  explicit Engine(DeviceConfig device = {});

  /// An engine driving `shared_pool`'s workers instead of spawning its own —
  /// how the S24 server gives every session a view of the SAME physical
  /// device: sessions' passes interleave fairly inside the pool (see
  /// ChipPool::RunAll) rather than each session pretending to own a machine.
  /// Null `shared_pool` falls back to a private pool; either way a
  /// single-chip device spawns no threads. device.num_chips should match
  /// shared_pool->num_chips() so tile scheduling and stats agree with the
  /// worker count.
  Engine(DeviceConfig device, std::shared_ptr<ChipPool> shared_pool);

  const DeviceConfig& device() const { return device_; }

  /// Chips the engine actually drives (device().num_chips clamped to >= 1).
  size_t num_chips() const;

  /// A ∩ B (§4). Requires union-compatible operands.
  Result<EngineResult> Intersect(const rel::Relation& a,
                                 const rel::Relation& b) const;

  /// A - B (§4.3).
  Result<EngineResult> Subtract(const rel::Relation& a,
                                const rel::Relation& b) const;

  /// remove-duplicates(A) (§5); keeps first occurrences in order.
  Result<EngineResult> RemoveDuplicates(const rel::Relation& a) const;

  /// A ∪ B (§5).
  Result<EngineResult> Union(const rel::Relation& a,
                             const rel::Relation& b) const;

  /// π_columns(A) (§5).
  Result<EngineResult> Project(const rel::Relation& a,
                               const std::vector<size_t>& columns) const;

  /// A ⋈ B (§6): equi-, multi-column and θ-joins per `spec`.
  Result<EngineResult> Join(const rel::Relation& a, const rel::Relation& b,
                            const rel::JoinSpec& spec) const;

  /// A ÷ B (§7).
  Result<EngineResult> Divide(const rel::Relation& a, const rel::Relation& b,
                              const rel::DivisionSpec& spec) const;

  /// σ over a conjunction of `column θ constant` predicates, on the
  /// selection array (a one-row fixed device; see arrays/selection_array.h).
  /// Runs in a single pass regardless of |A| (A streams through).
  Result<EngineResult> Select(
      const rel::Relation& a,
      const std::vector<arrays::SelectionPredicate>& predicates) const;

  /// The feed mode the engine will use for an operation over operands of
  /// the given sizes (resolves kAuto by comparing modeled pulse totals;
  /// exposed for tests and benchmarks).
  arrays::FeedMode ResolveMode(size_t n_a, size_t n_b) const;

  /// The executor the engine's passes will run on: the device's backend
  /// policy, with kFast/kAuto forced back to the RTL simulator while a
  /// fault plan is installed (fault injection needs pulse-level fidelity).
  fastpath::Backend ResolveBackend() const;

  /// Whether the scratchpad layer will double-buffer this engine's tile
  /// feeds (device().overlap with kAuto resolved to on — overlap never
  /// lengthens the modeled memory critical path).
  bool ResolveOverlap() const;

  /// A copy of this engine whose device is pinned to `mode`, sharing this
  /// engine's chip pool (so the copy is cheap and spawns no threads). The
  /// §9 machine uses this to honor a planner feed-mode hint on one step
  /// without rebuilding the device.
  Engine WithMode(arrays::FeedMode mode) const;

  /// The chip-health ledger, shared by engine copies; null without a fault
  /// plan. Exposed so callers (tests, the §9 machine's reporting) can
  /// inspect quarantine state after operations.
  const ChipHealth* health() const { return health_.get(); }

 private:
  /// Capacity of one operand block per pass under `mode`. `bottom` selects
  /// the B side (which differs from A in fixed mode).
  size_t BlockCapacity(arrays::FeedMode mode, bool bottom) const;

  /// Runs `count` independent tile tasks — across the chip pool when the
  /// device has several chips, serially in tile order otherwise — and
  /// returns the lowest-tile-index non-OK status. Tasks receive (tile,
  /// chip) and must write results only into their own tile's slots; callers
  /// merge in tile order afterwards, which is what keeps parallel output
  /// bit-identical to serial. Tasks must be re-runnable for one tile (reset
  /// their slot on entry): with a fault plan installed every attempt runs
  /// inside a faults::FaultScope, detected failures are retried on the next
  /// usable chip (striking / quarantining per the recovery policy, hard
  /// Unavailable only when no usable chip remains), fault counters are
  /// folded into `stats`, and `tile_checksum` (checksum of tile's slot, for
  /// the sampled shadow re-execution cross-check) may be consulted.
  Status RunTiled(size_t count,
                  const std::function<Status(size_t tile, size_t chip)>& task,
                  ExecStats* stats = nullptr,
                  const std::function<uint64_t(size_t tile)>& tile_checksum =
                      nullptr) const;

  /// Folds per-tile pass records into `stats` in tile order: sums passes /
  /// cycles / busy cell-pulses exactly as the serial path would, and adds
  /// the greedy multi-chip makespan of the batch to `makespan_cycles`.
  /// `traffic` (parallel to `infos`) then costs each tile's scratchpad feed
  /// into its assigned chip's DMA schedule via AccountDma.
  void MergePassInfos(const std::vector<arrays::ArrayRunInfo>& infos,
                      const std::vector<TileTraffic>& traffic,
                      ExecStats* stats) const;

  /// Builds one DmaQueue per chip from each tile's compute cycles + feed
  /// traffic (tiles in tile order on their assigned chip), schedules them
  /// under ResolveOverlap(), and folds dma_cycles / overlap_cycles /
  /// memory_makespan_cycles / dma_trace into `stats`. `chip_of_tile` is the
  /// greedy assignment MergePassInfos derived (all zeros for one chip).
  void AccountDma(const std::vector<arrays::ArrayRunInfo>& infos,
                  const std::vector<TileTraffic>& traffic,
                  const std::vector<size_t>& chip_of_tile,
                  ExecStats* stats) const;

  /// Width check against device_.columns.
  Status CheckWidth(size_t width) const;

  /// OR-accumulating membership over all (A-block, B-block) tile pairs:
  /// returns per-A-tuple bits of "matches something in B" under the edge
  /// rule selected by `dedup` (see .cc).
  Result<BitVector> TiledMembership(const rel::Relation& a,
                                    const rel::Relation& b, bool dedup,
                                    ExecStats* stats) const;

  /// Modeled total pulses of a membership pass structure under `mode`.
  double EstimatePulses(arrays::FeedMode mode, size_t n_a, size_t n_b,
                        size_t columns) const;

  DeviceConfig device_;
  /// Shared by engine copies (the §9 machine stores engines by value); null
  /// when num_chips() == 1, so the default device costs no threads.
  std::shared_ptr<ChipPool> pool_;
  /// Chip-health ledger for fault-tolerant scheduling; created iff the
  /// device has a fault plan, and shared by engine copies so strikes
  /// accumulate across operations exactly as on one physical device.
  std::shared_ptr<ChipHealth> health_;
};

}  // namespace db
}  // namespace systolic

#endif  // SYSTOLIC_CORE_ENGINE_H_
