#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "arrays/dedup_array.h"
#include "arrays/division_array.h"
#include "arrays/intersection_array.h"
#include "arrays/join_array.h"
#include "systolic/schedule.h"

namespace systolic {
namespace db {

using arrays::ArrayRunInfo;
using arrays::FeedMode;
using rel::Relation;

void ExecStats::AccumulatePass(const ArrayRunInfo& info) {
  ++passes;
  cycles += info.cycles;
  busy_cell_cycles += info.sim.busy_cell_cycles;
  num_compute_cells = std::max(num_compute_cells, info.sim.num_compute_cells);
}

namespace {

/// Copies tuples [start, start+count) of `r` into a fresh relation.
Relation Slice(const Relation& r, size_t start, size_t count) {
  Relation out(r.schema(), rel::RelationKind::kMulti);
  const size_t end = std::min(start + count, r.num_tuples());
  for (size_t i = start; i < end; ++i) {
    // Arity always matches: same schema.
    (void)out.Append(r.tuple(i));
  }
  return out;
}

}  // namespace

size_t Engine::BlockCapacity(FeedMode mode, bool bottom) const {
  if (device_.rows == 0) return SIZE_MAX;
  if (mode == FeedMode::kFixedB) {
    return bottom ? device_.rows : SIZE_MAX;
  }
  return (device_.rows + 1) / 2;
}

double Engine::EstimatePulses(FeedMode mode, size_t n_a, size_t n_b,
                              size_t columns) const {
  const double m = static_cast<double>(columns);
  if (mode == FeedMode::kFixedB) {
    // One streaming pass of all of A per block of B (block = device rows,
    // or all of B when unbounded): ceil(nB/R) * (2*nA + m + 1)-ish; the
    // per-pass form measured in the timing tests is 2n + m + 1 at nA = nB.
    const double rows = device_.rows == 0 ? std::max<size_t>(n_b, 1)
                                          : device_.rows;
    const double blocks_b = std::ceil(static_cast<double>(n_b) / rows);
    return std::max(1.0, blocks_b) *
           (static_cast<double>(n_a) + rows + m + 1);
  }
  // Marching: ceil(nA/cap) * ceil(nB/cap) passes of ~(4*cap + m) pulses.
  const double cap = static_cast<double>(
      std::min(BlockCapacity(FeedMode::kMarching, false),
               std::max(n_a > n_b ? n_a : n_b, size_t{1})));
  const double blocks_a = std::ceil(static_cast<double>(n_a) / cap);
  const double blocks_b = std::ceil(static_cast<double>(n_b) / cap);
  return std::max(1.0, blocks_a) * std::max(1.0, blocks_b) *
         (4.0 * cap + m);
}

FeedMode Engine::ResolveMode(size_t n_a, size_t n_b) const {
  switch (device_.mode) {
    case arrays::FeedModePolicy::kMarching:
      return FeedMode::kMarching;
    case arrays::FeedModePolicy::kFixedB:
      return FeedMode::kFixedB;
    case arrays::FeedModePolicy::kAuto:
      break;
  }
  const double marching = EstimatePulses(FeedMode::kMarching, n_a, n_b, 1);
  const double fixed = EstimatePulses(FeedMode::kFixedB, n_a, n_b, 1);
  return fixed <= marching ? FeedMode::kFixedB : FeedMode::kMarching;
}

Status Engine::CheckWidth(size_t width) const {
  if (device_.columns != 0 && width > device_.columns) {
    return Status::Capacity(
        "operand width " + std::to_string(width) + " exceeds the device's " +
        std::to_string(device_.columns) +
        " columns; the paper's decomposition partitions the result matrix "
        "over tuples, not over columns (§8)");
  }
  return Status::OK();
}

Result<BitVector> Engine::TiledMembership(const Relation& a, const Relation& b,
                                          bool dedup, ExecStats* stats) const {
  const size_t n_a = a.num_tuples();
  BitVector acc(n_a, false);
  if (n_a == 0) return acc;

  const FeedMode mode = ResolveMode(n_a, b.num_tuples());
  if (stats != nullptr) stats->resolved_mode = mode;
  arrays::MembershipOptions options;
  options.mode = mode;
  options.rows = device_.rows;

  const std::vector<size_t> a_cols = sim::AllColumns(a);
  const std::vector<size_t> b_cols = sim::AllColumns(b);

  if (dedup) {
    // Tile pairs (p, q) with q <= p over blocks of A, sized by the preload
    // (bottom) capacity so both disciplines use the same decomposition.
    // Diagonal tiles use the lower-triangle rule on block-local indices
    // (which coincide pairwise); below-diagonal tiles compare full blocks,
    // since every such pair already has j < i globally.
    const size_t cap = std::min(BlockCapacity(mode, true), n_a);
    for (size_t p = 0; p < n_a; p += cap) {
      const Relation block_p = Slice(a, p, cap);
      for (size_t q = 0; q <= p; q += cap) {
        ArrayRunInfo info;
        BitVector bits(0);
        if (q == p) {
          SYSTOLIC_ASSIGN_OR_RETURN(
              bits, RunMembership(block_p, block_p, a_cols, a_cols,
                                  arrays::EdgeRule::kStrictLowerTriangle,
                                  options, &info));
        } else {
          const Relation block_q = Slice(a, q, cap);
          SYSTOLIC_ASSIGN_OR_RETURN(
              bits, RunMembership(block_p, block_q, a_cols, a_cols,
                                  arrays::EdgeRule::kAllTrue, options, &info));
        }
        if (stats != nullptr) stats->AccumulatePass(info);
        for (size_t i = 0; i < bits.size(); ++i) {
          if (bits.Get(i)) acc.Set(p + i, true);
        }
      }
    }
    return acc;
  }

  const size_t cap_a = std::min(BlockCapacity(mode, false), n_a);
  const size_t cap_b =
      std::min(BlockCapacity(mode, true), std::max<size_t>(1, b.num_tuples()));
  for (size_t ai = 0; ai < n_a; ai += cap_a) {
    const Relation block_a = Slice(a, ai, cap_a);
    bool ran_any_b = false;
    for (size_t bi = 0; bi < b.num_tuples(); bi += cap_b) {
      const Relation block_b = Slice(b, bi, cap_b);
      ArrayRunInfo info;
      SYSTOLIC_ASSIGN_OR_RETURN(
          BitVector bits,
          RunMembership(block_a, block_b, a_cols, b_cols,
                        arrays::EdgeRule::kAllTrue, options, &info));
      if (stats != nullptr) stats->AccumulatePass(info);
      for (size_t i = 0; i < bits.size(); ++i) {
        if (bits.Get(i)) acc.Set(ai + i, true);
      }
      ran_any_b = true;
    }
    if (!ran_any_b && stats != nullptr) {
      // Empty B: the pass is trivially empty; nothing to run.
      ++stats->passes;
    }
  }
  return acc;
}

Result<EngineResult> Engine::Intersect(const Relation& a,
                                       const Relation& b) const {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(a.arity()));
  ExecStats stats;
  SYSTOLIC_ASSIGN_OR_RETURN(BitVector bits,
                            TiledMembership(a, b, /*dedup=*/false, &stats));
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  EngineResult result(std::move(out));
  result.stats = stats;
  return result;
}

Result<EngineResult> Engine::Subtract(const Relation& a,
                                      const Relation& b) const {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(a.arity()));
  ExecStats stats;
  SYSTOLIC_ASSIGN_OR_RETURN(BitVector bits,
                            TiledMembership(a, b, /*dedup=*/false, &stats));
  bits.FlipAll();
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  EngineResult result(std::move(out));
  result.stats = stats;
  return result;
}

Result<EngineResult> Engine::RemoveDuplicates(const Relation& a) const {
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(a.arity()));
  if (a.arity() == 0) {
    return Status::InvalidArgument("operand must have at least one column");
  }
  ExecStats stats;
  SYSTOLIC_ASSIGN_OR_RETURN(BitVector duplicate,
                            TiledMembership(a, a, /*dedup=*/true, &stats));
  duplicate.FlipAll();
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(duplicate, rel::RelationKind::kSet));
  EngineResult result(std::move(out));
  result.stats = stats;
  return result;
}

Result<EngineResult> Engine::Union(const Relation& a,
                                   const Relation& b) const {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation concatenated(a.schema(), rel::RelationKind::kMulti);
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(a));
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(b));
  return RemoveDuplicates(concatenated);
}

Result<EngineResult> Engine::Project(const Relation& a,
                                     const std::vector<size_t>& columns) const {
  SYSTOLIC_ASSIGN_OR_RETURN(Relation narrowed, a.ProjectColumns(columns));
  return RemoveDuplicates(narrowed);
}

Result<EngineResult> Engine::Join(const Relation& a, const Relation& b,
                                  const rel::JoinSpec& spec) const {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateJoinSpec(a.schema(), b.schema(), spec));
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(spec.left_columns.size()));
  SYSTOLIC_ASSIGN_OR_RETURN(
      rel::Schema out_schema,
      rel::JoinOutputSchema(a.schema(), b.schema(), spec));
  EngineResult result(
      Relation(std::move(out_schema), rel::RelationKind::kMulti));
  if (a.num_tuples() == 0 || b.num_tuples() == 0) {
    return result;
  }

  const FeedMode mode = ResolveMode(a.num_tuples(), b.num_tuples());
  result.stats.resolved_mode = mode;
  arrays::JoinArrayOptions options;
  options.mode = mode;
  options.rows = device_.rows;

  const size_t cap_a = std::min(BlockCapacity(mode, false), a.num_tuples());
  const size_t cap_b = std::min(BlockCapacity(mode, true), b.num_tuples());
  std::vector<std::pair<size_t, size_t>> matches;
  for (size_t ai = 0; ai < a.num_tuples(); ai += cap_a) {
    const Relation block_a = Slice(a, ai, cap_a);
    for (size_t bi = 0; bi < b.num_tuples(); bi += cap_b) {
      const Relation block_b = Slice(b, bi, cap_b);
      SYSTOLIC_ASSIGN_OR_RETURN(
          arrays::JoinArrayResult tile,
          arrays::SystolicJoin(block_a, block_b, spec, options));
      result.stats.AccumulatePass(tile.info);
      for (const auto& [i, j] : tile.matches) {
        matches.emplace_back(ai + i, bi + j);
      }
    }
  }
  std::sort(matches.begin(), matches.end());
  for (const auto& [i, j] : matches) {
    SYSTOLIC_RETURN_NOT_OK(result.relation.Append(
        rel::JoinConcatenate(a.tuple(i), b.tuple(j), spec)));
  }
  return result;
}

Result<EngineResult> Engine::Divide(const Relation& a, const Relation& b,
                                    const rel::DivisionSpec& spec) const {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateDivisionSpec(a.schema(), b.schema(), spec));
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Schema out_schema,
                            rel::DivisionOutputSchema(a.schema(), spec));
  EngineResult result(Relation(std::move(out_schema), rel::RelationKind::kSet));
  if (a.num_tuples() == 0) {
    // No candidate quotient values. One trivial pass for accounting.
    ++result.stats.passes;
    return result;
  }

  // Dividend-side tiling: group A's tuples by the first-occurrence rank of
  // their quotient value, so each chunk holds at most `rows` distinct
  // dividend keys (the dividend array's height).
  const std::vector<size_t> quotient_columns =
      rel::DivisionQuotientColumns(a.schema(), spec);
  const size_t max_p = device_.rows == 0 ? SIZE_MAX : device_.rows;
  std::map<rel::Tuple, size_t> x_rank;
  std::vector<Relation> chunks;
  for (const rel::Tuple& ta : a.tuples()) {
    rel::Tuple x;
    x.reserve(quotient_columns.size());
    for (size_t c : quotient_columns) x.push_back(ta[c]);
    auto [it, inserted] = x_rank.emplace(std::move(x), x_rank.size());
    const size_t chunk_index = it->second / max_p;
    if (chunk_index >= chunks.size()) {
      chunks.emplace_back(a.schema(), rel::RelationKind::kMulti);
    }
    SYSTOLIC_RETURN_NOT_OK(chunks[chunk_index].Append(ta));
  }

  // Divisor-side tiling: split B into groups of at most `columns` distinct
  // values; a key divides B iff it divides every group (intersection).
  const size_t max_q = device_.columns == 0 ? SIZE_MAX : device_.columns;
  std::vector<Relation> divisor_groups;
  if (b.num_tuples() == 0) {
    divisor_groups.emplace_back(b.schema(), rel::RelationKind::kSet);
  } else {
    std::map<rel::Tuple, size_t> y_rank;
    for (const rel::Tuple& tb : b.tuples()) {
      rel::Tuple y;
      y.reserve(spec.b_columns.size());
      for (size_t c : spec.b_columns) y.push_back(tb[c]);
      auto [it, inserted] = y_rank.emplace(std::move(y), y_rank.size());
      const size_t group_index = it->second / max_q;
      if (group_index >= divisor_groups.size()) {
        divisor_groups.emplace_back(b.schema(), rel::RelationKind::kMulti);
      }
      if (inserted) {
        SYSTOLIC_RETURN_NOT_OK(divisor_groups[group_index].Append(tb));
      }
    }
  }

  for (const Relation& chunk : chunks) {
    std::vector<rel::Tuple> surviving;  // in first-occurrence order
    for (size_t g = 0; g < divisor_groups.size(); ++g) {
      SYSTOLIC_ASSIGN_OR_RETURN(
          arrays::DivisionArrayResult pass,
          arrays::SystolicDivision(chunk, divisor_groups[g], spec));
      result.stats.AccumulatePass(pass.info);
      if (g == 0) {
        surviving = pass.relation.tuples();
      } else {
        std::vector<rel::Tuple> next;
        for (const rel::Tuple& x : surviving) {
          if (pass.relation.Contains(x)) next.push_back(x);
        }
        surviving = std::move(next);
      }
    }
    for (rel::Tuple& x : surviving) {
      SYSTOLIC_RETURN_NOT_OK(result.relation.Append(std::move(x)));
    }
  }
  return result;
}

Result<EngineResult> Engine::Select(
    const rel::Relation& a,
    const std::vector<arrays::SelectionPredicate>& predicates) const {
  if (device_.columns != 0 && predicates.size() > device_.columns) {
    return Status::Capacity(
        "selection uses " + std::to_string(predicates.size()) +
        " predicates but the device has " + std::to_string(device_.columns) +
        " columns");
  }
  SYSTOLIC_ASSIGN_OR_RETURN(arrays::SelectionResult run,
                            arrays::SystolicSelect(a, predicates));
  EngineResult result(std::move(run.relation));
  result.stats.AccumulatePass(run.info);
  return result;
}

}  // namespace db
}  // namespace systolic
