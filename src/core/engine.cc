#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <optional>

#include "arrays/dedup_array.h"
#include "arrays/division_array.h"
#include "arrays/intersection_array.h"
#include "arrays/join_array.h"
#include "faults/checksum.h"
#include "faults/fault_scope.h"
#include "perfmodel/estimates.h"
#include "system/scratchpad/memory.h"
#include "system/scratchpad/scratchpad.h"
#include "systolic/schedule.h"
#include "util/logging.h"

namespace systolic {
namespace db {

using arrays::ArrayRunInfo;
using arrays::FeedMode;
using rel::Relation;

void ExecStats::AccumulatePass(const ArrayRunInfo& info) {
  ++passes;
  cycles += info.cycles;
  makespan_cycles += info.cycles;
  busy_cell_cycles += info.sim.busy_cell_cycles;
  num_compute_cells = std::max(num_compute_cells, info.sim.num_compute_cells);
}

Engine::Engine(DeviceConfig device) : Engine(device, nullptr) {}

Engine::Engine(DeviceConfig device, std::shared_ptr<ChipPool> shared_pool)
    : device_(device),
      pool_(device.num_chips > 1
                ? (shared_pool != nullptr
                       ? std::move(shared_pool)
                       : std::make_shared<ChipPool>(device.num_chips))
                : nullptr),
      health_(device.faults != nullptr
                  ? std::make_shared<ChipHealth>(
                        std::max<size_t>(1, device.num_chips),
                        device.recovery.strike_limit)
                  : nullptr) {}

size_t Engine::num_chips() const { return std::max<size_t>(1, device_.num_chips); }

Status Engine::RunTiled(
    size_t count, const std::function<Status(size_t tile, size_t chip)>& task,
    ExecStats* stats,
    const std::function<uint64_t(size_t tile)>& tile_checksum) const {
  const auto dispatch =
      [&](const std::function<Status(size_t, size_t)>& tile_task) -> Status {
    if (pool_ == nullptr || count <= 1) {
      for (size_t tile = 0; tile < count; ++tile) {
        SYSTOLIC_RETURN_NOT_OK(tile_task(tile, 0));
      }
      return Status::OK();
    }
    std::vector<Status> statuses(count);
    pool_->RunAll(count, [&tile_task, &statuses](size_t tile, size_t chip) {
      statuses[tile] = tile_task(tile, chip);
    });
    for (const Status& status : statuses) {
      SYSTOLIC_RETURN_NOT_OK(status);
    }
    return Status::OK();
  };

  if (health_ == nullptr) return dispatch(task);

  // Fault-tolerant path. Every tile attempt runs inside a FaultScope that
  // injects the plan's faults for its chip and counts every corruption it
  // inflicts (the modelled bus parity / valid-strobe monitors). An attempt
  // is accepted only when it returned OK with zero detected corruptions —
  // so accepted tiles are exactly what a fault-free chip computes, which is
  // what makes recovered output bit-identical to the fault-free run.
  const faults::FaultPlan* plan = device_.faults.get();
  const faults::RecoveryOptions& recovery = device_.recovery;
  const size_t chips = health_->num_chips();
  const size_t max_attempts =
      recovery.max_attempts_per_tile != 0
          ? recovery.max_attempts_per_tile
          : health_->strike_limit() * chips + 4;

  std::atomic<size_t> faults_detected{0};
  std::atomic<size_t> retries{0};
  std::atomic<size_t> shadow_runs{0};
  std::atomic<size_t> shadow_mismatches{0};

  // Shadow attempts draw an independent injection stream via this key bit.
  constexpr uint32_t kShadowAttemptBit = 0x80000000u;

  const auto attempt_once = [&](size_t tile, size_t chip,
                                uint32_t attempt) -> Status {
    faults::FaultScope scope(plan, chip, tile, attempt);
    if (scope.chip_dead()) {
      return Status::Unavailable("chip " + std::to_string(chip) +
                                 " is dead and answers no work");
    }
    Status status;
    try {
      status = task(tile, chip);
    } catch (const HardwareFault& fault) {
      // A corrupted word tripped an array invariant mid-pass.
      return Status::DataCorruption(fault.what());
    }
    if (status.IsInternal()) {
      // Under injection a stall / lost-output Internal is the fault's
      // doing, not a driver bug: recoverable.
      return Status::DataCorruption(status.message());
    }
    if (status.ok() && scope.corruptions() > 0) {
      return Status::DataCorruption(
          std::to_string(scope.corruptions()) +
          " corrupted word(s) detected on chip " + std::to_string(chip));
    }
    return status;
  };

  const auto recovered = [&](size_t tile, size_t /*worker_chip*/) -> Status {
    // Route by TILE, not by worker thread: which pool worker claims a tile
    // is scheduling-dependent, and the injected faults are keyed by (chip,
    // tile, attempt) — tile-keyed routing makes the whole fault history of
    // a run reproducible regardless of thread interleaving.
    std::optional<size_t> chip = health_->PreferredChip(tile % chips);
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (!chip.has_value()) {
        return Status::Unavailable("no usable chips remain: all " +
                                   std::to_string(chips) +
                                   " are quarantined or dead");
      }
      if (attempt > 0) ++retries;
      Status status = attempt_once(tile, *chip, attempt);
      if (status.ok() && tile_checksum != nullptr &&
          faults::ShadowSampled(plan->seed(), tile,
                                recovery.shadow_fraction)) {
        // Defense in depth: re-run the tile and require matching output
        // checksums. The shadow run faces fresh (independently keyed)
        // faults, so it must itself pass detection to be comparable.
        const uint64_t primary = tile_checksum(tile);
        const Status shadow =
            attempt_once(tile, *chip, attempt | kShadowAttemptBit);
        ++shadow_runs;
        if (!shadow.ok()) {
          status = shadow;
        } else if (tile_checksum(tile) != primary) {
          ++shadow_mismatches;
          status = Status::DataCorruption(
              "shadow re-execution checksum mismatch on chip " +
              std::to_string(*chip));
        }
      }
      if (status.ok()) {
        // A clean attempt proves the chip still works: forgive its strikes,
        // so only consecutive failures — a genuinely failing chip, not a
        // run of transient upsets — ever reach quarantine.
        health_->ClearStrikes(*chip);
        return status;
      }
      if (!status.IsDataCorruption() && !status.IsUnavailable()) {
        return status;  // caller error (capacity, arity, ...): not a fault
      }
      ++faults_detected;
      if (status.IsUnavailable()) {
        health_->Quarantine(*chip);
      } else {
        health_->Strike(*chip);
      }
      chip = health_->PreferredChip((*chip + 1) % chips);
    }
    return Status::Unavailable("tile " + std::to_string(tile) +
                               " still failing after " +
                               std::to_string(max_attempts) + " attempts");
  };

  const Status status = dispatch(recovered);
  if (stats != nullptr) {
    stats->faults_detected += faults_detected.load();
    stats->tile_retries += retries.load();
    stats->shadow_runs += shadow_runs.load();
    stats->shadow_mismatches += shadow_mismatches.load();
  }
  return status;
}

void Engine::MergePassInfos(const std::vector<ArrayRunInfo>& infos,
                            const std::vector<TileTraffic>& traffic,
                            ExecStats* stats) const {
  if (stats == nullptr) return;
  stats->num_chips = num_chips();
  // Degradation: quarantined chips take no further passes, so the makespan
  // schedule only spreads over the chips still usable.
  const size_t usable = health_ == nullptr
                            ? num_chips()
                            : std::max<size_t>(1, health_->num_usable());
  stats->healthy_chips = usable;
  // Sum exactly as the serial path's per-pass accumulation would.
  std::vector<size_t> chip_busy(usable, 0);
  std::vector<size_t> chip_of_tile(infos.size(), 0);
  for (size_t t = 0; t < infos.size(); ++t) {
    const ArrayRunInfo& info = infos[t];
    ++stats->passes;
    stats->cycles += info.cycles;
    stats->busy_cell_cycles += info.sim.busy_cell_cycles;
    stats->num_compute_cells =
        std::max(stats->num_compute_cells, info.sim.num_compute_cells);
    // Greedy tile-order schedule: each pass to the chip that frees first.
    const auto next_free = std::min_element(chip_busy.begin(), chip_busy.end());
    chip_of_tile[t] = static_cast<size_t>(next_free - chip_busy.begin());
    *next_free += info.cycles;
  }
  stats->makespan_cycles +=
      *std::max_element(chip_busy.begin(), chip_busy.end());
  AccountDma(infos, traffic, chip_of_tile, stats);
}

void Engine::AccountDma(const std::vector<ArrayRunInfo>& infos,
                        const std::vector<TileTraffic>& traffic,
                        const std::vector<size_t>& chip_of_tile,
                        ExecStats* stats) const {
  if (stats == nullptr || infos.empty()) return;
  SYSTOLIC_CHECK(traffic.size() == infos.size() &&
                 chip_of_tile.size() == infos.size())
      << "DMA accounting needs one traffic record and chip per tile";
  const bool overlap = ResolveOverlap();
  stats->overlap_enabled = overlap;
  size_t chips_used = 0;
  for (size_t chip : chip_of_tile) {
    chips_used = std::max(chips_used, chip + 1);
  }
  // One DMA engine + bank set per chip: queue each chip's tiles in tile
  // order (the same order the greedy schedule assigns them). The batch's
  // memory critical path is the slowest chip's schedule, mirroring how
  // makespan_cycles takes the busiest chip.
  size_t batch_makespan = 0;
  for (size_t chip = 0; chip < chips_used; ++chip) {
    spad::DmaQueue queue(overlap);
    for (size_t t = 0; t < infos.size(); ++t) {
      if (chip_of_tile[t] != chip) continue;
      queue.Mvin(t, traffic[t].in_a);
      queue.Preload(t, traffic[t].in_b);
      queue.Compute(t, infos[t].cycles);
      queue.Mvout(t, traffic[t].out);
    }
    const size_t makespan = queue.Schedule(&stats->dma_trace);
    stats->dma_cycles += queue.TransferCycleTotal();
    stats->overlap_cycles += queue.SerialCycleTotal() - makespan;
    batch_makespan = std::max(batch_makespan, makespan);
  }
  stats->memory_makespan_cycles += batch_makespan;
}

size_t Engine::BlockCapacity(FeedMode mode, bool bottom) const {
  return perf::MembershipBlockCapacity(mode == FeedMode::kFixedB, bottom,
                                       device_.rows);
}

double Engine::EstimatePulses(FeedMode mode, size_t n_a, size_t n_b,
                              size_t columns) const {
  // Shared with the query planner (perfmodel/estimates), so the planner's
  // predicted feed mode is exactly what ResolveMode picks at run time.
  if (mode == FeedMode::kFixedB) {
    return perf::FixedBMembershipPulses(n_a, n_b, columns, device_.rows);
  }
  return perf::MarchingMembershipPulses(n_a, n_b, columns, device_.rows);
}

bool Engine::ResolveOverlap() const {
  // kAuto resolves to on: double-buffering never lengthens the modeled
  // memory critical path (Schedule() degenerates to the serial timeline
  // when transfers and compute cannot overlap).
  return device_.overlap != spad::OverlapPolicy::kOff;
}

fastpath::Backend Engine::ResolveBackend() const {
  // Fault injection corrupts words inside individual pulses; the analytic
  // fast path simulates no pulses, so any fast policy silently falls back
  // to the RTL simulator while a fault plan is installed.
  if (device_.backend == fastpath::BackendPolicy::kRtl ||
      device_.faults != nullptr) {
    return fastpath::Backend::kRtl;
  }
  return fastpath::Backend::kFast;
}

FeedMode Engine::ResolveMode(size_t n_a, size_t n_b) const {
  switch (device_.mode) {
    case arrays::FeedModePolicy::kMarching:
      return FeedMode::kMarching;
    case arrays::FeedModePolicy::kFixedB:
      return FeedMode::kFixedB;
    case arrays::FeedModePolicy::kAuto:
      break;
  }
  const double marching = EstimatePulses(FeedMode::kMarching, n_a, n_b, 1);
  const double fixed = EstimatePulses(FeedMode::kFixedB, n_a, n_b, 1);
  return fixed <= marching ? FeedMode::kFixedB : FeedMode::kMarching;
}

Engine Engine::WithMode(FeedMode mode) const {
  Engine copy = *this;  // shares pool_, so no threads are spawned
  copy.device_.mode = mode == FeedMode::kFixedB
                          ? arrays::FeedModePolicy::kFixedB
                          : arrays::FeedModePolicy::kMarching;
  return copy;
}

Status Engine::CheckWidth(size_t width) const {
  if (device_.columns != 0 && width > device_.columns) {
    return Status::Capacity(
        "operand width " + std::to_string(width) + " exceeds the device's " +
        std::to_string(device_.columns) +
        " columns; the paper's decomposition partitions the result matrix "
        "over tuples, not over columns (§8)");
  }
  return Status::OK();
}

Result<BitVector> Engine::TiledMembership(const Relation& a, const Relation& b,
                                          bool dedup, ExecStats* stats) const {
  const size_t n_a = a.num_tuples();
  BitVector acc(n_a, false);
  if (n_a == 0) return acc;

  const FeedMode mode = ResolveMode(n_a, b.num_tuples());
  const fastpath::Backend backend = ResolveBackend();
  if (stats != nullptr) {
    stats->resolved_mode = mode;
    stats->backend = backend;
    stats->analytic_timing = backend == fastpath::Backend::kFast;
  }
  arrays::MembershipOptions options;
  options.mode = mode;
  options.rows = device_.rows;

  // One pass, either executor: same bits, same cycle count. Only the RTL
  // simulator produces cell-occupancy statistics.
  const auto run_membership =
      [&](const Relation& block_a, const Relation& block_b,
          const std::vector<size_t>& cols_a, const std::vector<size_t>& cols_b,
          arrays::EdgeRule edge_rule,
          ArrayRunInfo* info) -> Result<BitVector> {
    if (backend == fastpath::Backend::kFast) {
      return fastpath::FastMembership(block_a, block_b, cols_a, cols_b,
                                      edge_rule, options, info);
    }
    return RunMembership(block_a, block_b, cols_a, cols_b, edge_rule, options,
                         info);
  };

  const std::vector<size_t> a_cols = sim::AllColumns(a);
  const std::vector<size_t> b_cols = sim::AllColumns(b);

  // Enumerate the §8 tile grid up front: every tile is an independent
  // sub-problem, so the batch can fan out across the chip pool. Results land
  // in per-tile slots and are merged in tile order below, making the output
  // and the summed statistics bit-identical to the serial path.
  struct MembershipTile {
    size_t a_start;
    size_t b_start;
    bool diagonal;  // dedup: tile compares a block against itself
  };
  std::vector<MembershipTile> tiles;
  // Block sizes: dedup tiles A against itself by the preload (bottom)
  // capacity so both disciplines use the same decomposition; the general
  // case blocks A by the top capacity and B by the bottom capacity.
  const size_t cap_a = dedup ? std::min(BlockCapacity(mode, true), n_a)
                             : std::min(BlockCapacity(mode, false), n_a);
  const size_t cap_b = dedup ? cap_a
                             : std::min(BlockCapacity(mode, true),
                                        std::max<size_t>(1, b.num_tuples()));
  if (dedup) {
    // Tile pairs (p, q) with q <= p over blocks of A. Diagonal tiles use
    // the lower-triangle rule on block-local indices (which coincide
    // pairwise); below-diagonal tiles compare full blocks, since every such
    // pair already has j < i globally.
    for (size_t p = 0; p < n_a; p += cap_a) {
      for (size_t q = 0; q <= p; q += cap_a) {
        tiles.push_back({p, q, q == p});
      }
    }
  } else {
    for (size_t ai = 0; ai < n_a; ai += cap_a) {
      for (size_t bi = 0; bi < b.num_tuples(); bi += cap_b) {
        tiles.push_back({ai, bi, false});
      }
      if (b.num_tuples() == 0 && stats != nullptr) {
        // Empty B: the pass is trivially empty; nothing to run.
        ++stats->passes;
      }
    }
  }

  std::vector<BitVector> tile_bits(tiles.size(), BitVector(0));
  std::vector<ArrayRunInfo> tile_infos(tiles.size());
  std::vector<TileTraffic> tile_traffic(tiles.size());
  SYSTOLIC_RETURN_NOT_OK(RunTiled(
      tiles.size(),
      [&](size_t t, size_t /*chip*/) -> Status {
        const MembershipTile& tile = tiles[t];
        ArrayRunInfo info;
        // Per-attempt banks: a retried attempt re-stages its operand feed
        // from scratch, so it never sees a half-drained bank.
        spad::ScratchpadBank bank_a;
        spad::ScratchpadBank bank_b;
        TileTraffic feed;
        if (dedup) {
          const Relation block_p = bank_a.Stage(a, tile.a_start, cap_a);
          feed.in_a = bank_a.staged_bytes();
          if (tile.diagonal) {
            // The diagonal compares the staged block against itself: one
            // mvin, no preload — both array edges tap the same bank.
            SYSTOLIC_ASSIGN_OR_RETURN(
                tile_bits[t],
                run_membership(block_p, block_p, a_cols, a_cols,
                               arrays::EdgeRule::kStrictLowerTriangle, &info));
          } else {
            const Relation block_q = bank_b.Stage(a, tile.b_start, cap_a);
            feed.in_b = bank_b.staged_bytes();
            SYSTOLIC_ASSIGN_OR_RETURN(
                tile_bits[t],
                run_membership(block_p, block_q, a_cols, a_cols,
                               arrays::EdgeRule::kAllTrue, &info));
          }
        } else {
          const Relation block_a = bank_a.Stage(a, tile.a_start, cap_a);
          const Relation block_b = bank_b.Stage(b, tile.b_start, cap_b);
          feed.in_a = bank_a.staged_bytes();
          feed.in_b = bank_b.staged_bytes();
          SYSTOLIC_ASSIGN_OR_RETURN(
              tile_bits[t],
              run_membership(block_a, block_b, a_cols, b_cols,
                             arrays::EdgeRule::kAllTrue, &info));
        }
        // The accepted attempt's feed streams out of the banks into the
        // array exactly once; its result bits drain as packed bytes.
        bank_a.Drain(bank_a.staged_bytes());
        bank_b.Drain(bank_b.staged_bytes());
        feed.out = spad::BitDrainBytes(tile_bits[t].size());
        tile_infos[t] = info;
        tile_traffic[t] = feed;
        return Status::OK();
      },
      stats,
      [&tile_bits](size_t t) { return faults::ChecksumBits(tile_bits[t]); }));

  MergePassInfos(tile_infos, tile_traffic, stats);
  for (size_t t = 0; t < tiles.size(); ++t) {
    const BitVector& bits = tile_bits[t];
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits.Get(i)) acc.Set(tiles[t].a_start + i, true);
    }
  }
  return acc;
}

Result<EngineResult> Engine::Intersect(const Relation& a,
                                       const Relation& b) const {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(a.arity()));
  ExecStats stats;
  SYSTOLIC_ASSIGN_OR_RETURN(BitVector bits,
                            TiledMembership(a, b, /*dedup=*/false, &stats));
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  EngineResult result(std::move(out));
  result.stats = stats;
  return result;
}

Result<EngineResult> Engine::Subtract(const Relation& a,
                                      const Relation& b) const {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(a.arity()));
  ExecStats stats;
  SYSTOLIC_ASSIGN_OR_RETURN(BitVector bits,
                            TiledMembership(a, b, /*dedup=*/false, &stats));
  bits.FlipAll();
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  EngineResult result(std::move(out));
  result.stats = stats;
  return result;
}

Result<EngineResult> Engine::RemoveDuplicates(const Relation& a) const {
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(a.arity()));
  if (a.arity() == 0) {
    return Status::InvalidArgument("operand must have at least one column");
  }
  ExecStats stats;
  SYSTOLIC_ASSIGN_OR_RETURN(BitVector duplicate,
                            TiledMembership(a, a, /*dedup=*/true, &stats));
  duplicate.FlipAll();
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(duplicate, rel::RelationKind::kSet));
  EngineResult result(std::move(out));
  result.stats = stats;
  return result;
}

Result<EngineResult> Engine::Union(const Relation& a,
                                   const Relation& b) const {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation concatenated(a.schema(), rel::RelationKind::kMulti);
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(a));
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(b));
  return RemoveDuplicates(concatenated);
}

Result<EngineResult> Engine::Project(const Relation& a,
                                     const std::vector<size_t>& columns) const {
  SYSTOLIC_ASSIGN_OR_RETURN(Relation narrowed, a.ProjectColumns(columns));
  return RemoveDuplicates(narrowed);
}

Result<EngineResult> Engine::Join(const Relation& a, const Relation& b,
                                  const rel::JoinSpec& spec) const {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateJoinSpec(a.schema(), b.schema(), spec));
  SYSTOLIC_RETURN_NOT_OK(CheckWidth(spec.left_columns.size()));
  SYSTOLIC_ASSIGN_OR_RETURN(
      rel::Schema out_schema,
      rel::JoinOutputSchema(a.schema(), b.schema(), spec));
  EngineResult result(
      Relation(std::move(out_schema), rel::RelationKind::kMulti));
  const fastpath::Backend backend = ResolveBackend();
  result.stats.backend = backend;
  result.stats.analytic_timing = backend == fastpath::Backend::kFast;
  if (a.num_tuples() == 0 || b.num_tuples() == 0) {
    return result;
  }

  const FeedMode mode = ResolveMode(a.num_tuples(), b.num_tuples());
  result.stats.resolved_mode = mode;
  arrays::JoinArrayOptions options;
  options.mode = mode;
  options.rows = device_.rows;

  const size_t cap_a = std::min(BlockCapacity(mode, false), a.num_tuples());
  const size_t cap_b = std::min(BlockCapacity(mode, true), b.num_tuples());
  std::vector<std::pair<size_t, size_t>> offsets;  // tile -> (ai, bi)
  for (size_t ai = 0; ai < a.num_tuples(); ai += cap_a) {
    for (size_t bi = 0; bi < b.num_tuples(); bi += cap_b) {
      offsets.emplace_back(ai, bi);
    }
  }

  std::vector<std::vector<std::pair<size_t, size_t>>> tile_matches(
      offsets.size());
  std::vector<ArrayRunInfo> tile_infos(offsets.size());
  std::vector<TileTraffic> tile_traffic(offsets.size());
  const size_t out_arity = result.relation.arity();
  SYSTOLIC_RETURN_NOT_OK(RunTiled(
      offsets.size(),
      [&](size_t t, size_t /*chip*/) -> Status {
        const auto [ai, bi] = offsets[t];
        // Retried attempts must not append onto a rejected attempt's output.
        tile_matches[t].clear();
        // Per-attempt banks: a retry re-stages the full operand feed.
        spad::ScratchpadBank bank_a;
        spad::ScratchpadBank bank_b;
        const Relation block_a = bank_a.Stage(a, ai, cap_a);
        const Relation block_b = bank_b.Stage(b, bi, cap_b);
        SYSTOLIC_ASSIGN_OR_RETURN(
            arrays::JoinArrayResult tile,
            backend == fastpath::Backend::kFast
                ? fastpath::FastJoin(block_a, block_b, spec, options)
                : arrays::SystolicJoin(block_a, block_b, spec, options));
        bank_a.Drain(bank_a.staged_bytes());
        bank_b.Drain(bank_b.staged_bytes());
        tile_traffic[t] = {bank_a.staged_bytes(), bank_b.staged_bytes(),
                           spad::TupleBytes(tile.matches.size(), out_arity)};
        tile_infos[t] = tile.info;
        tile_matches[t].reserve(tile.matches.size());
        for (const auto& [i, j] : tile.matches) {
          tile_matches[t].emplace_back(ai + i, bi + j);
        }
        return Status::OK();
      },
      &result.stats,
      [&tile_matches](size_t t) {
        return faults::ChecksumMatches(tile_matches[t]);
      }));
  MergePassInfos(tile_infos, tile_traffic, &result.stats);

  std::vector<std::pair<size_t, size_t>> matches;
  for (const auto& per_tile : tile_matches) {
    matches.insert(matches.end(), per_tile.begin(), per_tile.end());
  }
  std::sort(matches.begin(), matches.end());
  for (const auto& [i, j] : matches) {
    SYSTOLIC_RETURN_NOT_OK(result.relation.Append(
        rel::JoinConcatenate(a.tuple(i), b.tuple(j), spec)));
  }
  return result;
}

Result<EngineResult> Engine::Divide(const Relation& a, const Relation& b,
                                    const rel::DivisionSpec& spec) const {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateDivisionSpec(a.schema(), b.schema(), spec));
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Schema out_schema,
                            rel::DivisionOutputSchema(a.schema(), spec));
  EngineResult result(Relation(std::move(out_schema), rel::RelationKind::kSet));
  const fastpath::Backend backend = ResolveBackend();
  result.stats.backend = backend;
  result.stats.analytic_timing = backend == fastpath::Backend::kFast;
  if (a.num_tuples() == 0) {
    // No candidate quotient values. One trivial pass for accounting.
    ++result.stats.passes;
    return result;
  }

  // Dividend-side tiling: group A's tuples by the first-occurrence rank of
  // their quotient value, so each chunk holds at most `rows` distinct
  // dividend keys (the dividend array's height).
  const std::vector<size_t> quotient_columns =
      rel::DivisionQuotientColumns(a.schema(), spec);
  const size_t max_p = device_.rows == 0 ? SIZE_MAX : device_.rows;
  std::map<rel::Tuple, size_t> x_rank;
  std::vector<Relation> chunks;
  for (const rel::Tuple& ta : a.tuples()) {
    rel::Tuple x;
    x.reserve(quotient_columns.size());
    for (size_t c : quotient_columns) x.push_back(ta[c]);
    auto [it, inserted] = x_rank.emplace(std::move(x), x_rank.size());
    const size_t chunk_index = it->second / max_p;
    if (chunk_index >= chunks.size()) {
      chunks.emplace_back(a.schema(), rel::RelationKind::kMulti);
    }
    SYSTOLIC_RETURN_NOT_OK(chunks[chunk_index].Append(ta));
  }

  // Divisor-side tiling: split B into groups of at most `columns` distinct
  // values; a key divides B iff it divides every group (intersection).
  const size_t max_q = device_.columns == 0 ? SIZE_MAX : device_.columns;
  std::vector<Relation> divisor_groups;
  if (b.num_tuples() == 0) {
    divisor_groups.emplace_back(b.schema(), rel::RelationKind::kSet);
  } else {
    std::map<rel::Tuple, size_t> y_rank;
    for (const rel::Tuple& tb : b.tuples()) {
      rel::Tuple y;
      y.reserve(spec.b_columns.size());
      for (size_t c : spec.b_columns) y.push_back(tb[c]);
      auto [it, inserted] = y_rank.emplace(std::move(y), y_rank.size());
      const size_t group_index = it->second / max_q;
      if (group_index >= divisor_groups.size()) {
        divisor_groups.emplace_back(b.schema(), rel::RelationKind::kMulti);
      }
      if (inserted) {
        SYSTOLIC_RETURN_NOT_OK(divisor_groups[group_index].Append(tb));
      }
    }
  }

  // Every (chunk, divisor-group) pass is independent — a key divides B iff
  // it divides every group, and intersecting the groups' survivor sets
  // commutes with running the passes — so the whole grid fans out across
  // the chip pool at once; the per-chunk intersection below walks groups in
  // order, reproducing the serial result exactly.
  const size_t num_groups = divisor_groups.size();
  std::vector<arrays::DivisionArrayResult> passes(
      chunks.size() * num_groups,
      arrays::DivisionArrayResult(Relation(b.schema(), rel::RelationKind::kSet)));
  std::vector<ArrayRunInfo> tile_infos(chunks.size() * num_groups);
  std::vector<TileTraffic> tile_traffic(chunks.size() * num_groups);
  SYSTOLIC_RETURN_NOT_OK(RunTiled(
      chunks.size() * num_groups,
      [&](size_t t, size_t /*chip*/) -> Status {
        // Per-attempt banks; every pass re-streams its chunk, so a chunk
        // paired with G divisor groups is staged G times.
        spad::ScratchpadBank bank_a;
        spad::ScratchpadBank bank_b;
        const Relation& chunk = chunks[t / num_groups];
        const Relation& group = divisor_groups[t % num_groups];
        const Relation block_a = bank_a.Stage(chunk, 0, chunk.num_tuples());
        const Relation block_b = bank_b.Stage(group, 0, group.num_tuples());
        SYSTOLIC_ASSIGN_OR_RETURN(
            passes[t],
            backend == fastpath::Backend::kFast
                ? fastpath::FastDivision(block_a, block_b, spec)
                : arrays::SystolicDivision(block_a, block_b, spec));
        bank_a.Drain(bank_a.staged_bytes());
        bank_b.Drain(bank_b.staged_bytes());
        tile_traffic[t] = {bank_a.staged_bytes(), bank_b.staged_bytes(),
                           machine::RelationBytes(passes[t].relation)};
        tile_infos[t] = passes[t].info;
        return Status::OK();
      },
      &result.stats,
      [&passes](size_t t) {
        return faults::ChecksumRelation(passes[t].relation);
      }));
  MergePassInfos(tile_infos, tile_traffic, &result.stats);

  for (size_t c = 0; c < chunks.size(); ++c) {
    std::vector<rel::Tuple> surviving;  // in first-occurrence order
    for (size_t g = 0; g < num_groups; ++g) {
      const arrays::DivisionArrayResult& pass = passes[c * num_groups + g];
      if (g == 0) {
        surviving = pass.relation.tuples();
      } else {
        std::vector<rel::Tuple> next;
        for (const rel::Tuple& x : surviving) {
          if (pass.relation.Contains(x)) next.push_back(x);
        }
        surviving = std::move(next);
      }
    }
    for (rel::Tuple& x : surviving) {
      SYSTOLIC_RETURN_NOT_OK(result.relation.Append(std::move(x)));
    }
  }
  return result;
}

Result<EngineResult> Engine::Select(
    const rel::Relation& a,
    const std::vector<arrays::SelectionPredicate>& predicates) const {
  if (device_.columns != 0 && predicates.size() > device_.columns) {
    return Status::Capacity(
        "selection uses " + std::to_string(predicates.size()) +
        " predicates but the device has " + std::to_string(device_.columns) +
        " columns");
  }
  // One logical tile, routed through RunTiled so selection passes get the
  // same fault detection and retry treatment as the tiled operators.
  std::vector<arrays::SelectionResult> slot;
  slot.emplace_back(Relation(a.schema(), rel::RelationKind::kMulti));
  ExecStats stats;
  const fastpath::Backend backend = ResolveBackend();
  stats.backend = backend;
  stats.analytic_timing = backend == fastpath::Backend::kFast;
  SYSTOLIC_RETURN_NOT_OK(RunTiled(
      1,
      [&](size_t, size_t) -> Status {
        SYSTOLIC_ASSIGN_OR_RETURN(
            slot[0], backend == fastpath::Backend::kFast
                         ? fastpath::FastSelect(a, predicates)
                         : arrays::SystolicSelect(a, predicates));
        return Status::OK();
      },
      &stats,
      [&slot](size_t) { return faults::ChecksumBits(slot[0].selected); }));
  // Selection streams A through the one-row device: one mvin of the whole
  // operand, no preload (the predicate constants live in the cells), and
  // the selected tuples drain back. One tile, so chip 0 by definition.
  const TileTraffic feed{machine::RelationBytes(a), 0,
                         machine::RelationBytes(slot[0].relation)};
  AccountDma({slot[0].info}, {feed}, {0}, &stats);
  EngineResult result(std::move(slot[0].relation));
  result.stats = stats;
  result.stats.AccumulatePass(slot[0].info);
  if (health_ != nullptr) {
    result.stats.healthy_chips = std::max<size_t>(1, health_->num_usable());
  }
  return result;
}

}  // namespace db
}  // namespace systolic
