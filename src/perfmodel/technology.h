#ifndef SYSTOLIC_PERFMODEL_TECHNOLOGY_H_
#define SYSTOLIC_PERFMODEL_TECHNOLOGY_H_

#include <cstddef>
#include <string>

namespace systolic {
namespace perf {

/// The §8 technology assumptions, as data. The defaults are the paper's
/// "(conservative) estimates ... typical of results that have been achieved
/// with present NMOS technology".
struct Technology {
  std::string name = "nmos-1980-conservative";

  /// Bit-comparator footprint: "about 240µ x 150µ in area".
  double comparator_width_um = 240.0;
  double comparator_height_um = 150.0;

  /// "The comparison is performed (very conservatively!) in about 350ns,
  /// including time for on-chip and off-chip data transfer."
  double bit_comparison_ns = 350.0;

  /// "Chips are about 6000µ x 6000µ in area."
  double chip_width_um = 6000.0;
  double chip_height_um = 6000.0;

  /// "It is practical to construct devices involving a few thousand chips.
  /// We assume 1000 chips."
  size_t chips = 1000;

  /// Off-chip transfer time (<30ns) and pin multiplexing ("about 10 bits on
  /// a pin during a single comparison") — recorded for the feasibility
  /// argument that pins do not throttle the comparators.
  double offchip_transfer_ns = 30.0;
  size_t bits_per_pin_per_comparison = 10;

  /// The paper's two scenarios.
  static Technology Conservative1980();
  /// "If we assume instead, for example, 200ns/comparison, and 3000 chips."
  static Technology Aggressive1980();

  /// "Division gives us about 1000 bit-comparators per chip."
  size_t ComparatorsPerChip() const;

  /// "This gives us the capability of performing 10^6 comparisons in
  /// parallel."
  size_t ParallelBitComparisons() const;

  /// True iff pin bandwidth keeps the comparators fed: the off-chip transfer
  /// of one multiplexed pin-load fits inside one comparison time.
  bool PinsKeepUp() const;
};

}  // namespace perf
}  // namespace systolic

#endif  // SYSTOLIC_PERFMODEL_TECHNOLOGY_H_
