#include "perfmodel/estimates.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace systolic {
namespace perf {

double IntersectionBitComparisons(const RelationShape& a,
                                  const RelationShape& b) {
  // Every pair of tuples is fully compared, at a.bits_per_tuple bit
  // comparisons per pair (union-compatible shapes share the tuple width).
  return static_cast<double>(a.num_tuples) *
         static_cast<double>(b.num_tuples) *
         static_cast<double>(a.bits_per_tuple);
}

double DedupBitComparisons(const RelationShape& a) {
  return IntersectionBitComparisons(a, a);
}

double JoinBitComparisons(size_t n_a, size_t n_b, size_t join_bits) {
  return static_cast<double>(n_a) * static_cast<double>(n_b) *
         static_cast<double>(join_bits);
}

double SecondsForBitComparisons(const Technology& tech,
                                double bit_comparisons) {
  const double parallel = static_cast<double>(tech.ParallelBitComparisons());
  return bit_comparisons / parallel * tech.bit_comparison_ns * 1e-9;
}

double IntersectionSeconds(const Technology& tech, const RelationShape& a,
                           const RelationShape& b) {
  return SecondsForBitComparisons(tech, IntersectionBitComparisons(a, b));
}

size_t DecompositionPasses(size_t n_a, size_t n_b, size_t block_tuples) {
  if (block_tuples == 0) return 0;
  const size_t blocks_a = (n_a + block_tuples - 1) / block_tuples;
  const size_t blocks_b = (n_b + block_tuples - 1) / block_tuples;
  return blocks_a * blocks_b;
}

double SecondsForCycles(const Technology& tech, size_t cycles) {
  // One pulse = one word comparison per active cell; the bit comparators of
  // a word compare in parallel, so a pulse costs one bit-comparison time.
  return static_cast<double>(cycles) * tech.bit_comparison_ns * 1e-9;
}

size_t MembershipBlockCapacity(bool fixed_b, bool bottom, size_t device_rows) {
  if (device_rows == 0) return SIZE_MAX;
  if (fixed_b) {
    return bottom ? device_rows : SIZE_MAX;
  }
  return (device_rows + 1) / 2;
}

double FixedBMembershipPulses(size_t n_a, size_t n_b, size_t columns,
                              size_t device_rows) {
  const double m = static_cast<double>(columns);
  // One streaming pass of all of A per block of B (block = device rows, or
  // all of B when unbounded): ceil(nB/R) * (2*nA + m + 1)-ish; the per-pass
  // form measured in the timing tests is 2n + m + 1 at nA = nB.
  const double rows =
      device_rows == 0 ? std::max<size_t>(n_b, 1) : device_rows;
  const double blocks_b = std::ceil(static_cast<double>(n_b) / rows);
  return std::max(1.0, blocks_b) * (static_cast<double>(n_a) + rows + m + 1);
}

double MarchingMembershipPulses(size_t n_a, size_t n_b, size_t columns,
                                size_t device_rows) {
  const double m = static_cast<double>(columns);
  // Marching: ceil(nA/cap) * ceil(nB/cap) passes of ~(4*cap + m) pulses.
  const double cap = static_cast<double>(
      std::min(MembershipBlockCapacity(/*fixed_b=*/false, false, device_rows),
               std::max(n_a > n_b ? n_a : n_b, size_t{1})));
  const double blocks_a = std::ceil(static_cast<double>(n_a) / cap);
  const double blocks_b = std::ceil(static_cast<double>(n_b) / cap);
  return std::max(1.0, blocks_a) * std::max(1.0, blocks_b) * (4.0 * cap + m);
}

}  // namespace perf
}  // namespace systolic
