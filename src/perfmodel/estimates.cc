#include "perfmodel/estimates.h"

namespace systolic {
namespace perf {

double IntersectionBitComparisons(const RelationShape& a,
                                  const RelationShape& b) {
  // Every pair of tuples is fully compared, at a.bits_per_tuple bit
  // comparisons per pair (union-compatible shapes share the tuple width).
  return static_cast<double>(a.num_tuples) *
         static_cast<double>(b.num_tuples) *
         static_cast<double>(a.bits_per_tuple);
}

double DedupBitComparisons(const RelationShape& a) {
  return IntersectionBitComparisons(a, a);
}

double JoinBitComparisons(size_t n_a, size_t n_b, size_t join_bits) {
  return static_cast<double>(n_a) * static_cast<double>(n_b) *
         static_cast<double>(join_bits);
}

double SecondsForBitComparisons(const Technology& tech,
                                double bit_comparisons) {
  const double parallel = static_cast<double>(tech.ParallelBitComparisons());
  return bit_comparisons / parallel * tech.bit_comparison_ns * 1e-9;
}

double IntersectionSeconds(const Technology& tech, const RelationShape& a,
                           const RelationShape& b) {
  return SecondsForBitComparisons(tech, IntersectionBitComparisons(a, b));
}

size_t DecompositionPasses(size_t n_a, size_t n_b, size_t block_tuples) {
  if (block_tuples == 0) return 0;
  const size_t blocks_a = (n_a + block_tuples - 1) / block_tuples;
  const size_t blocks_b = (n_b + block_tuples - 1) / block_tuples;
  return blocks_a * blocks_b;
}

double SecondsForCycles(const Technology& tech, size_t cycles) {
  // One pulse = one word comparison per active cell; the bit comparators of
  // a word compare in parallel, so a pulse costs one bit-comparison time.
  return static_cast<double>(cycles) * tech.bit_comparison_ns * 1e-9;
}

}  // namespace perf
}  // namespace systolic
