#ifndef SYSTOLIC_PERFMODEL_ESTIMATES_H_
#define SYSTOLIC_PERFMODEL_ESTIMATES_H_

#include <cstddef>

#include "perfmodel/technology.h"

namespace systolic {
namespace perf {

/// The §8 sizing assumptions for "a typical relation".
struct RelationShape {
  /// "A relation is of size 10^4 tuples."
  size_t num_tuples = 10'000;
  /// "A tuple is of size 1500 bits (or about 200 characters)."
  size_t bits_per_tuple = 1'500;

  size_t TotalBits() const { return num_tuples * bits_per_tuple; }
  double TotalBytes() const { return static_cast<double>(TotalBits()) / 8.0; }
};

/// Total bit comparisons for intersecting two relations: full tuple
/// comparisons between all pairs — "1500 bit-comparisons for each of the
/// (10^4)^2 tuple comparisons", i.e. 1.5x10^11 for the default shapes.
double IntersectionBitComparisons(const RelationShape& a,
                                  const RelationShape& b);

/// Bit comparisons for remove-duplicates of one relation (same all-pairs
/// structure with the relation against itself).
double DedupBitComparisons(const RelationShape& a);

/// Bit comparisons for a join touching only `join_bits` of each tuple pair.
double JoinBitComparisons(size_t n_a, size_t n_b, size_t join_bits);

/// Wall time for `bit_comparisons` on a device described by `tech`:
/// comparisons / parallelism x per-comparison time. Reproduces §8's
///   (1.5x10^11 comparisons) x (350ns / 10^6 comparisons) ≈ 50ms
/// and the aggressive-scenario ≈10ms.
double SecondsForBitComparisons(const Technology& tech, double bit_comparisons);

/// Convenience: intersection wall time for two shapes under `tech`.
double IntersectionSeconds(const Technology& tech, const RelationShape& a,
                           const RelationShape& b);

/// Word-level device passes needed when each operand block is limited to
/// `block_tuples` per pass (the §8 decomposition): ceil(nA/b) x ceil(nB/b).
size_t DecompositionPasses(size_t n_a, size_t n_b, size_t block_tuples);

/// Bridges the cycle-accurate simulator to the analytic model: wall time of
/// `cycles` word-level pulses when one pulse performs up to `word_bits`
/// bit comparisons in bit-parallel comparators (§8's word→bit decomposition
/// makes one word comparison cost one bit-comparison time, as the bits
/// compare in parallel).
double SecondsForCycles(const Technology& tech, size_t cycles);

/// Modeled total pulses of a membership-family pass structure (intersection,
/// difference, dedup, join) under §8's fixed-B discipline on a device with
/// `device_rows` grid rows (0 = unbounded): every block of B is preloaded
/// and all of A streams past it. This is the single source of truth shared
/// by Engine (to resolve FeedModePolicy::kAuto per operation) and the query
/// planner (to cost plan steps), so that the planner's predicted feed mode
/// is exactly the mode the engine resolves at run time.
double FixedBMembershipPulses(size_t n_a, size_t n_b, size_t columns,
                              size_t device_rows);

/// Same for the §3 marching discipline: both operands march through the
/// grid in blocks of the marching block capacity ((rows+1)/2).
double MarchingMembershipPulses(size_t n_a, size_t n_b, size_t columns,
                                size_t device_rows);

/// Operand-block capacity per pass on a device with `device_rows` rows:
/// the §8 decomposition block size. `fixed_b` selects the fixed-B
/// discipline, where the preloaded (bottom) operand block is a full
/// device-height `device_rows` while the streaming operand is unblocked;
/// marching blocks both operands to (rows+1)/2. Returns SIZE_MAX when the
/// device is unbounded (rows == 0) or the side is unblocked.
size_t MembershipBlockCapacity(bool fixed_b, bool bottom, size_t device_rows);

}  // namespace perf
}  // namespace systolic

#endif  // SYSTOLIC_PERFMODEL_ESTIMATES_H_
