#ifndef SYSTOLIC_PERFMODEL_ESTIMATES_H_
#define SYSTOLIC_PERFMODEL_ESTIMATES_H_

#include <cstddef>

#include "perfmodel/technology.h"

namespace systolic {
namespace perf {

/// The §8 sizing assumptions for "a typical relation".
struct RelationShape {
  /// "A relation is of size 10^4 tuples."
  size_t num_tuples = 10'000;
  /// "A tuple is of size 1500 bits (or about 200 characters)."
  size_t bits_per_tuple = 1'500;

  size_t TotalBits() const { return num_tuples * bits_per_tuple; }
  double TotalBytes() const { return static_cast<double>(TotalBits()) / 8.0; }
};

/// Total bit comparisons for intersecting two relations: full tuple
/// comparisons between all pairs — "1500 bit-comparisons for each of the
/// (10^4)^2 tuple comparisons", i.e. 1.5x10^11 for the default shapes.
double IntersectionBitComparisons(const RelationShape& a,
                                  const RelationShape& b);

/// Bit comparisons for remove-duplicates of one relation (same all-pairs
/// structure with the relation against itself).
double DedupBitComparisons(const RelationShape& a);

/// Bit comparisons for a join touching only `join_bits` of each tuple pair.
double JoinBitComparisons(size_t n_a, size_t n_b, size_t join_bits);

/// Wall time for `bit_comparisons` on a device described by `tech`:
/// comparisons / parallelism x per-comparison time. Reproduces §8's
///   (1.5x10^11 comparisons) x (350ns / 10^6 comparisons) ≈ 50ms
/// and the aggressive-scenario ≈10ms.
double SecondsForBitComparisons(const Technology& tech, double bit_comparisons);

/// Convenience: intersection wall time for two shapes under `tech`.
double IntersectionSeconds(const Technology& tech, const RelationShape& a,
                           const RelationShape& b);

/// Word-level device passes needed when each operand block is limited to
/// `block_tuples` per pass (the §8 decomposition): ceil(nA/b) x ceil(nB/b).
size_t DecompositionPasses(size_t n_a, size_t n_b, size_t block_tuples);

/// Bridges the cycle-accurate simulator to the analytic model: wall time of
/// `cycles` word-level pulses when one pulse performs up to `word_bits`
/// bit comparisons in bit-parallel comparators (§8's word→bit decomposition
/// makes one word comparison cost one bit-comparison time, as the bits
/// compare in parallel).
double SecondsForCycles(const Technology& tech, size_t cycles);

}  // namespace perf
}  // namespace systolic

#endif  // SYSTOLIC_PERFMODEL_ESTIMATES_H_
