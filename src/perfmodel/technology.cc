#include "perfmodel/technology.h"

namespace systolic {
namespace perf {

Technology Technology::Conservative1980() { return Technology{}; }

Technology Technology::Aggressive1980() {
  Technology tech;
  tech.name = "nmos-1980-aggressive";
  tech.bit_comparison_ns = 200.0;
  tech.chips = 3000;
  return tech;
}

size_t Technology::ComparatorsPerChip() const {
  const double chip_area = chip_width_um * chip_height_um;
  const double comparator_area = comparator_width_um * comparator_height_um;
  return static_cast<size_t>(chip_area / comparator_area);
}

size_t Technology::ParallelBitComparisons() const {
  return chips * ComparatorsPerChip();
}

bool Technology::PinsKeepUp() const {
  // One comparison period must cover one multiplexed off-chip transfer.
  return offchip_transfer_ns * static_cast<double>(1) <= bit_comparison_ns;
}

}  // namespace perf
}  // namespace systolic
