#include "perfmodel/disk.h"

#include <cmath>

namespace systolic {
namespace perf {

size_t MaxTuplesIntersectableWithin(const Technology& tech,
                                    size_t bits_per_tuple, double seconds) {
  // seconds = n^2 * bits_per_tuple / parallel * t_cmp  =>  solve for n.
  const double parallel = static_cast<double>(tech.ParallelBitComparisons());
  const double per_pair =
      static_cast<double>(bits_per_tuple) * tech.bit_comparison_ns * 1e-9;
  if (per_pair <= 0.0) return 0;
  const double n_squared = seconds * parallel / per_pair;
  return n_squared <= 0.0 ? 0 : static_cast<size_t>(std::sqrt(n_squared));
}

double RelationBytes(size_t num_tuples, size_t bits_per_tuple) {
  return static_cast<double>(num_tuples) *
         static_cast<double>(bits_per_tuple) / 8.0;
}

bool ArrayKeepsUpWithDisk(const Technology& tech, const DiskModel& disk,
                          size_t bits_per_tuple) {
  // The marching array accepts a new input tuple every 2 pulses per side;
  // one pulse is one bit-comparison time (bit-parallel word comparators).
  const double tuple_period_s = 2.0 * tech.bit_comparison_ns * 1e-9;
  const double array_bytes_per_s =
      (static_cast<double>(bits_per_tuple) / 8.0) / tuple_period_s;
  return array_bytes_per_s >= disk.BytesPerSecond();
}

}  // namespace perf
}  // namespace systolic
