#ifndef SYSTOLIC_PERFMODEL_FLOORPLAN_H_
#define SYSTOLIC_PERFMODEL_FLOORPLAN_H_

#include <cstddef>
#include <string>

#include "perfmodel/technology.h"

namespace systolic {
namespace perf {

/// Area/chip budget of a concrete array under a technology — the other half
/// of §8's arithmetic: the paper divides chip area by comparator area to get
/// ~1000 comparators per chip and sizes devices in chips; this module runs
/// the same arithmetic for any grid shape, after the word→bit decomposition
/// (each word cell of `word_bits` bits becomes `word_bits` bit comparators,
/// which is how the paper counts).
struct Floorplan {
  /// Word-level cells (grid cells plus accumulation cells if requested).
  size_t word_cells = 0;
  /// Bit comparators after decomposition.
  size_t bit_comparators = 0;
  /// Silicon area of the comparators, in µm².
  double comparator_area_um2 = 0;
  /// Chips needed at the technology's comparators-per-chip density.
  size_t chips_required = 0;
  /// Fraction of the last chip's comparators actually used, in (0, 1].
  double last_chip_fill = 0;

  std::string ToString() const;
};

/// Plans a comparison grid of rows x columns word cells of `word_bits`-bit
/// words; `with_accumulator` adds the §4 accumulation column (one cell per
/// row, counted as one comparator-equivalent each).
Floorplan PlanComparisonGrid(const Technology& tech, size_t rows,
                             size_t columns, size_t word_bits,
                             bool with_accumulator);

/// The largest per-operand capacity n of a marching intersection array
/// (rows = 2n-1 plus accumulation) of `columns` word columns of `word_bits`
/// bits that fits on `chips` chips. Returns 0 if not even n = 1 fits.
size_t MaxMarchingCapacity(const Technology& tech, size_t chips,
                           size_t columns, size_t word_bits);

}  // namespace perf
}  // namespace systolic

#endif  // SYSTOLIC_PERFMODEL_FLOORPLAN_H_
