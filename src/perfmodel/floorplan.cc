#include "perfmodel/floorplan.h"

namespace systolic {
namespace perf {

std::string Floorplan::ToString() const {
  return std::to_string(word_cells) + " word cells = " +
         std::to_string(bit_comparators) + " bit comparators, " +
         std::to_string(chips_required) + " chips";
}

Floorplan PlanComparisonGrid(const Technology& tech, size_t rows,
                             size_t columns, size_t word_bits,
                             bool with_accumulator) {
  Floorplan plan;
  plan.word_cells = rows * columns + (with_accumulator ? rows : 0);
  // The accumulation cell is a single OR gate plus a latch; we count it as
  // one comparator-equivalent, which the paper's coarse arithmetic absorbs.
  plan.bit_comparators =
      rows * columns * word_bits + (with_accumulator ? rows : 0);
  plan.comparator_area_um2 = static_cast<double>(plan.bit_comparators) *
                             tech.comparator_width_um *
                             tech.comparator_height_um;
  const size_t per_chip = tech.ComparatorsPerChip();
  if (per_chip == 0 || plan.bit_comparators == 0) {
    plan.chips_required = 0;
    plan.last_chip_fill = 0;
    return plan;
  }
  plan.chips_required = (plan.bit_comparators + per_chip - 1) / per_chip;
  const size_t remainder = plan.bit_comparators % per_chip;
  plan.last_chip_fill = remainder == 0
                            ? 1.0
                            : static_cast<double>(remainder) /
                                  static_cast<double>(per_chip);
  return plan;
}

size_t MaxMarchingCapacity(const Technology& tech, size_t chips,
                           size_t columns, size_t word_bits) {
  const size_t budget = chips * tech.ComparatorsPerChip();
  // rows = 2n-1; comparators = rows*columns*word_bits + rows.
  // Solve rows <= budget / (columns*word_bits + 1), then n = (rows+1)/2.
  const size_t per_row = columns * word_bits + 1;
  if (per_row == 0) return 0;
  const size_t rows = budget / per_row;
  if (rows == 0) return 0;
  return (rows + 1) / 2;
}

}  // namespace perf
}  // namespace systolic
