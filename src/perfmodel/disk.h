#ifndef SYSTOLIC_PERFMODEL_DISK_H_
#define SYSTOLIC_PERFMODEL_DISK_H_

#include <cstddef>

#include "perfmodel/estimates.h"
#include "perfmodel/technology.h"

namespace systolic {
namespace perf {

/// §8's mass-storage comparison: "a moving-head disk rotates at about 3600
/// r.p.m., or about once every 17ms. Assume that we can read an entire
/// cylinder in one revolution ... This is a rate of about 500,000 bytes in
/// 17ms."
struct DiskModel {
  double rpm = 3600.0;
  size_t bytes_per_cylinder = 500'000;

  /// Seconds per revolution (~16.7ms at 3600 rpm).
  double RevolutionSeconds() const { return 60.0 / rpm; }

  /// Sustained transfer rate, bytes/second, reading cylinder-per-revolution.
  double BytesPerSecond() const {
    return static_cast<double>(bytes_per_cylinder) / RevolutionSeconds();
  }
};

/// The largest n such that two n-tuple relations of `bits_per_tuple` bits can
/// be intersected by the device within `seconds` — used to reproduce §8's
/// closing claim that "in a comparable period of time, our systolic array can
/// process ... two relations, each of about 2 million bytes".
size_t MaxTuplesIntersectableWithin(const Technology& tech,
                                    size_t bits_per_tuple, double seconds);

/// Bytes of one such relation (n tuples of bits_per_tuple bits).
double RelationBytes(size_t num_tuples, size_t bits_per_tuple);

/// True iff the device's input consumption rate is at least the disk's
/// delivery rate, i.e. the array "can keep up with the data rate achievable
/// with the fast mass storage devices". The array consumes one tuple-pair
/// of input per two pulses in marching mode; we compare byte rates for a
/// stream of `bits_per_tuple`-bit tuples.
bool ArrayKeepsUpWithDisk(const Technology& tech, const DiskModel& disk,
                          size_t bits_per_tuple);

}  // namespace perf
}  // namespace systolic

#endif  // SYSTOLIC_PERFMODEL_DISK_H_
