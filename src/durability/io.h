#ifndef SYSTOLIC_DURABILITY_IO_H_
#define SYSTOLIC_DURABILITY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "durability/crash_plan.h"
#include "util/result.h"

namespace systolic {
namespace durability {

/// The durable layer's only route to the filesystem. Every operation first
/// consults the optional CrashInjector (see crash_plan.h): data writes admit
/// a byte-granular prefix, metadata operations are all-or-nothing, and once
/// the injector has crashed every call fails with kCrashMessage. Without an
/// injector the calls are plain POSIX with real fsyncs; with one, fsyncs
/// become pure barriers (the injector's ordered-prefix model already treats
/// admitted bytes as durable), which keeps exhaustive crash sweeps fast.
class Io {
 public:
  static constexpr const char* kCrashMessage =
      "simulated crash: durable write path cut";

  Io() = default;
  explicit Io(CrashInjector* injector) : injector_(injector) {}

  CrashInjector* injector() const { return injector_; }

  /// True for the failure status every Io call returns past the cut.
  static bool IsSimulatedCrash(const Status& status);

  Status Mkdirs(const std::string& path) const;
  /// Creates-or-truncates `path` with `bytes`. A mid-write cut leaves the
  /// admitted prefix on disk.
  Status WriteFile(const std::string& path, const std::string& bytes) const;
  /// Appends `bytes` to `path` (which must exist). Same torn-prefix rule.
  Status AppendFile(const std::string& path, const std::string& bytes) const;
  Status Fsync(const std::string& path) const;
  Status FsyncDir(const std::string& path) const;
  /// Atomic: either fully happens (one unit) or, past the cut, not at all.
  Status Rename(const std::string& from, const std::string& to) const;
  Status Truncate(const std::string& path, uint64_t length) const;
  Status RemoveAll(const std::string& path) const;

  /// Reads are free (crash injection models the write path only).
  static Result<std::string> ReadFile(const std::string& path);
  static Result<uint64_t> FileSize(const std::string& path);
  static bool Exists(const std::string& path);
  /// Names (not paths) of directory entries, sorted; empty if absent.
  static std::vector<std::string> ListDir(const std::string& path);

 private:
  Status Admit() const;  // one metadata unit
  Status WriteInternal(const std::string& path, const std::string& bytes,
                       bool append) const;

  CrashInjector* injector_ = nullptr;
};

}  // namespace durability
}  // namespace systolic

#endif  // SYSTOLIC_DURABILITY_IO_H_
