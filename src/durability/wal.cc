#include "durability/wal.h"

#include <array>
#include <sstream>
#include <utility>

#include "relational/csv.h"
#include "relational/schema.h"
#include "relational/storage.h"
#include "util/strings.h"

namespace systolic {
namespace durability {

namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Result<rel::ValueType> ParseValueType(const std::string& token) {
  if (token == "int64") return rel::ValueType::kInt64;
  if (token == "string") return rel::ValueType::kString;
  if (token == "bool") return rel::ValueType::kBool;
  return Status::DataCorruption("WAL record: unknown value type '" + token +
                                "'");
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(std::string_view bytes, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3]))
             << 24;
}

/// Splits `payload` at the first k newlines into header lines plus the CSV
/// remainder. Record layouts are positional (line 1 = kind, line 2 =
/// columns, line 3 = "data"), so CSV content can never be mistaken for
/// structure.
Status SplitRecordLines(std::string_view payload, size_t num_lines,
                        std::vector<std::string>* lines, std::string* rest) {
  lines->clear();
  size_t start = 0;
  for (size_t i = 0; i < num_lines; ++i) {
    const size_t nl = payload.find('\n', start);
    if (nl == std::string_view::npos) {
      return Status::DataCorruption("WAL record: truncated header lines");
    }
    lines->emplace_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
  if (rest != nullptr) *rest = std::string(payload.substr(start));
  return Status::OK();
}

Result<std::vector<WalRecord::ColumnSpec>> ParseColumnsLine(
    const std::string& line) {
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag != "columns") {
    return Status::DataCorruption("WAL record: expected 'columns' line");
  }
  std::vector<WalRecord::ColumnSpec> specs;
  std::string token;
  while (in >> token) {
    const std::vector<std::string> parts = Split(token, ':');
    if (parts.size() != 3) {
      return Status::DataCorruption("WAL record: malformed column '" + token +
                                    "'");
    }
    WalRecord::ColumnSpec spec;
    SYSTOLIC_ASSIGN_OR_RETURN(spec.column, rel::UnescapeIdentifier(parts[0]));
    SYSTOLIC_ASSIGN_OR_RETURN(spec.domain, rel::UnescapeIdentifier(parts[1]));
    SYSTOLIC_ASSIGN_OR_RETURN(spec.type, ParseValueType(parts[2]));
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::DataCorruption("WAL record: empty columns line");
  }
  return specs;
}

Result<std::string> EncodeRelationRecord(const char* kind,
                                         const std::string& name,
                                         const rel::Relation& relation,
                                         bool with_kind_token) {
  std::ostringstream payload;
  payload << kind << " " << rel::EscapeIdentifier(name);
  if (with_kind_token) {
    payload << " "
            << (relation.kind() == rel::RelationKind::kSet ? "set" : "multi");
  }
  payload << "\ncolumns";
  for (const rel::Column& column : relation.schema().columns()) {
    payload << " " << rel::EscapeIdentifier(column.name) << ":"
            << rel::EscapeIdentifier(column.domain->name()) << ":"
            << rel::ValueTypeToString(column.domain->type());
  }
  payload << "\ndata\n";
  SYSTOLIC_RETURN_NOT_OK(rel::WriteCsv(relation, payload));
  return payload.str();
}

/// Resolves put/append column specs against `catalog`, creating missing
/// domains; the resulting schema shares the catalog's Domain objects so
/// parsed tuples encode into the live dictionaries.
Result<rel::Schema> ResolveColumns(
    const std::vector<WalRecord::ColumnSpec>& specs, rel::Catalog* catalog) {
  std::vector<rel::Column> columns;
  for (const WalRecord::ColumnSpec& spec : specs) {
    auto found = catalog->GetDomain(spec.domain);
    std::shared_ptr<rel::Domain> domain;
    if (found.ok()) {
      domain = *found;
      if (domain->type() != spec.type) {
        return Status::DataCorruption(
            "WAL record: domain '" + spec.domain + "' is " +
            rel::ValueTypeToString(domain->type()) + " but the record says " +
            rel::ValueTypeToString(spec.type));
      }
    } else {
      SYSTOLIC_ASSIGN_OR_RETURN(domain,
                                catalog->CreateDomain(spec.domain, spec.type));
    }
    columns.push_back(rel::Column{spec.column, std::move(domain)});
  }
  return rel::Schema(std::move(columns));
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static constexpr std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char b : bytes) {
    crc = kTable[(crc ^ static_cast<unsigned char>(b)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeCreateDomain(const std::string& name, rel::ValueType type) {
  return "domain " + rel::EscapeIdentifier(name) + " " +
         rel::ValueTypeToString(type) + "\n";
}

Result<std::string> EncodePut(const std::string& name,
                              const rel::Relation& relation) {
  return EncodeRelationRecord("put", name, relation, /*with_kind_token=*/true);
}

Result<std::string> EncodeAppend(const std::string& name,
                                 const rel::Relation& batch) {
  return EncodeRelationRecord("append", name, batch,
                              /*with_kind_token=*/false);
}

std::string EncodeDrop(const std::string& name) {
  return "drop " + rel::EscapeIdentifier(name) + "\n";
}

std::string EncodeAck(const std::string& token, uint64_t request_id,
                      uint64_t records) {
  return "ack " + rel::EscapeIdentifier(token) + " " +
         std::to_string(request_id) + " " + std::to_string(records) + "\n";
}

std::string EncodeCommit(uint64_t group_size) {
  return "commit " + std::to_string(group_size) + "\n";
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  const size_t nl = payload.find('\n');
  const std::string first(payload.substr(
      0, nl == std::string_view::npos ? payload.size() : nl));
  std::istringstream in(first);
  std::string kind;
  in >> kind;
  WalRecord record;
  if (kind == "domain") {
    std::string name_token, type_token;
    if (!(in >> name_token >> type_token)) {
      return Status::DataCorruption("WAL record: malformed domain entry");
    }
    record.kind = WalRecord::Kind::kCreateDomain;
    SYSTOLIC_ASSIGN_OR_RETURN(record.name,
                              rel::UnescapeIdentifier(name_token));
    SYSTOLIC_ASSIGN_OR_RETURN(record.type, ParseValueType(type_token));
    return record;
  }
  if (kind == "drop") {
    std::string name_token;
    if (!(in >> name_token)) {
      return Status::DataCorruption("WAL record: malformed drop entry");
    }
    record.kind = WalRecord::Kind::kDrop;
    SYSTOLIC_ASSIGN_OR_RETURN(record.name,
                              rel::UnescapeIdentifier(name_token));
    return record;
  }
  if (kind == "ack") {
    std::string token_token, id_token, records_token;
    int64_t id = 0, records = 0;
    if (!(in >> token_token >> id_token >> records_token) ||
        !ParseInt64(id_token, &id) || id <= 0 ||
        !ParseInt64(records_token, &records) || records < 0) {
      return Status::DataCorruption("WAL record: malformed ack entry");
    }
    record.kind = WalRecord::Kind::kAck;
    SYSTOLIC_ASSIGN_OR_RETURN(record.name,
                              rel::UnescapeIdentifier(token_token));
    record.request_id = static_cast<uint64_t>(id);
    record.ack_records = static_cast<uint64_t>(records);
    return record;
  }
  if (kind == "commit") {
    int64_t n = 0;
    std::string count_token;
    if (!(in >> count_token) || !ParseInt64(count_token, &n) || n < 0) {
      return Status::DataCorruption("WAL record: malformed commit marker");
    }
    record.kind = WalRecord::Kind::kCommit;
    record.group_size = static_cast<uint64_t>(n);
    return record;
  }
  if (kind != "put" && kind != "append") {
    return Status::DataCorruption("WAL record: unknown kind '" + kind + "'");
  }

  record.kind =
      kind == "put" ? WalRecord::Kind::kPut : WalRecord::Kind::kAppend;
  std::vector<std::string> lines;
  SYSTOLIC_RETURN_NOT_OK(SplitRecordLines(payload, 3, &lines, &record.csv));
  std::istringstream header(lines[0]);
  std::string name_token, kind_token;
  header >> kind_token >> name_token;
  SYSTOLIC_ASSIGN_OR_RETURN(record.name, rel::UnescapeIdentifier(name_token));
  if (record.kind == WalRecord::Kind::kPut) {
    std::string set_token;
    if (!(header >> set_token) || (set_token != "set" && set_token != "multi")) {
      return Status::DataCorruption("WAL record: put without set|multi");
    }
    record.relation_kind = set_token == "multi" ? rel::RelationKind::kMulti
                                                : rel::RelationKind::kSet;
  }
  SYSTOLIC_ASSIGN_OR_RETURN(record.columns, ParseColumnsLine(lines[1]));
  if (lines[2] != "data") {
    return Status::DataCorruption("WAL record: expected 'data' separator");
  }
  return record;
}

void AppendFrame(std::string* wal, std::string_view payload) {
  PutU32(wal, static_cast<uint32_t>(payload.size()));
  PutU32(wal, Crc32(payload));
  wal->append(payload);
}

WalFrame ParseFrame(std::string_view wal, size_t offset) {
  WalFrame frame;
  if (offset + 8 > wal.size()) return frame;
  const uint32_t length = GetU32(wal, offset);
  const uint32_t crc = GetU32(wal, offset + 4);
  if (offset + 8 + length > wal.size()) return frame;
  frame.payload = wal.substr(offset + 8, length);
  if (Crc32(frame.payload) != crc) return frame;
  frame.complete = true;
  frame.end = offset + 8 + length;
  return frame;
}

std::string WalHeader(uint64_t checkpoint_id) {
  return std::string(kWalMagic) + " " + std::to_string(checkpoint_id) + "\n";
}

Result<std::pair<uint64_t, size_t>> ParseWalHeader(std::string_view bytes) {
  const size_t nl = bytes.find('\n');
  if (nl == std::string_view::npos) {
    return Status::DataCorruption("WAL header: missing newline");
  }
  const std::string line(bytes.substr(0, nl));
  std::istringstream in(line);
  std::string magic, id_token;
  int64_t id = 0;
  if (!(in >> magic >> id_token) || magic != kWalMagic ||
      !ParseInt64(id_token, &id) || id < 0) {
    return Status::DataCorruption("WAL header: malformed '" + line + "'");
  }
  return std::make_pair(static_cast<uint64_t>(id), nl + 1);
}

Status ApplyWalRecord(const WalRecord& record, rel::Catalog* catalog) {
  switch (record.kind) {
    case WalRecord::Kind::kCreateDomain:
      return catalog->CreateDomain(record.name, record.type).status();
    case WalRecord::Kind::kDrop:
      return catalog->DropRelation(record.name);
    case WalRecord::Kind::kPut: {
      SYSTOLIC_ASSIGN_OR_RETURN(rel::Schema schema,
                                ResolveColumns(record.columns, catalog));
      std::istringstream csv(record.csv);
      SYSTOLIC_ASSIGN_OR_RETURN(
          rel::Relation relation,
          rel::ReadCsv(csv, schema, /*has_header=*/true,
                       record.relation_kind));
      catalog->PutRelation(record.name, std::move(relation));
      return Status::OK();
    }
    case WalRecord::Kind::kAppend: {
      SYSTOLIC_ASSIGN_OR_RETURN(const rel::Relation* existing,
                                catalog->GetRelation(record.name));
      const rel::Schema& schema = existing->schema();
      if (schema.num_columns() != record.columns.size()) {
        return Status::DataCorruption(
            "WAL record: append arity mismatch for '" + record.name + "'");
      }
      for (size_t c = 0; c < record.columns.size(); ++c) {
        const rel::Column& column = schema.column(c);
        const WalRecord::ColumnSpec& spec = record.columns[c];
        if (column.name != spec.column ||
            column.domain->name() != spec.domain ||
            column.domain->type() != spec.type) {
          return Status::DataCorruption(
              "WAL record: append schema mismatch for '" + record.name + "'");
        }
      }
      std::istringstream csv(record.csv);
      SYSTOLIC_ASSIGN_OR_RETURN(
          rel::Relation batch,
          rel::ReadCsv(csv, schema, /*has_header=*/true, existing->kind()));
      rel::Relation merged = *existing;
      SYSTOLIC_RETURN_NOT_OK(merged.Concatenate(batch));
      catalog->PutRelation(record.name, std::move(merged));
      return Status::OK();
    }
    case WalRecord::Kind::kAck:
      return Status::OK();  // dedup metadata; recovery collects it separately
    case WalRecord::Kind::kCommit:
      return Status::Internal("commit markers are not applicable records");
  }
  return Status::Internal("unknown WAL record kind");
}

}  // namespace durability
}  // namespace systolic
