#include "durability/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/strings.h"

namespace systolic {
namespace durability {

namespace {

namespace fs = std::filesystem;

Status Crashed() { return Status::IOError(Io::kCrashMessage); }

Status RealFsync(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + ErrnoString(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync('" + path +
                           "') failed: " + ErrnoString(saved_errno));
  }
  return Status::OK();
}

}  // namespace

bool Io::IsSimulatedCrash(const Status& status) {
  return status.code() == StatusCode::kIOError &&
         status.message() == kCrashMessage;
}

Status Io::Admit() const {
  if (injector_ != nullptr && !injector_->AdmitOp()) return Crashed();
  return Status::OK();
}

Status Io::Mkdirs(const std::string& path) const {
  SYSTOLIC_RETURN_NOT_OK(Admit());
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status Io::WriteInternal(const std::string& path, const std::string& bytes,
                         bool append) const {
  size_t admitted = bytes.size();
  bool torn = false;
  if (injector_ != nullptr) {
    if (injector_->crashed()) return Crashed();
    admitted = injector_->AdmitBytes(bytes.size());
    torn = admitted < bytes.size();
  }
  auto mode = std::ios::binary | (append ? std::ios::app : std::ios::trunc);
  std::ofstream out(path, mode);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(admitted));
  out.flush();
  if (!out) {
    return Status::IOError("short write to '" + path + "'");
  }
  return torn ? Crashed() : Status::OK();
}

Status Io::WriteFile(const std::string& path, const std::string& bytes) const {
  return WriteInternal(path, bytes, /*append=*/false);
}

Status Io::AppendFile(const std::string& path, const std::string& bytes) const {
  return WriteInternal(path, bytes, /*append=*/true);
}

Status Io::Fsync(const std::string& path) const {
  SYSTOLIC_RETURN_NOT_OK(Admit());
  if (injector_ != nullptr) return Status::OK();  // barrier only; see class doc
  return RealFsync(path, /*directory=*/false);
}

Status Io::FsyncDir(const std::string& path) const {
  SYSTOLIC_RETURN_NOT_OK(Admit());
  if (injector_ != nullptr) return Status::OK();
  return RealFsync(path, /*directory=*/true);
}

Status Io::Rename(const std::string& from, const std::string& to) const {
  SYSTOLIC_RETURN_NOT_OK(Admit());
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("cannot rename '" + from + "' to '" + to +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status Io::Truncate(const std::string& path, uint64_t length) const {
  SYSTOLIC_RETURN_NOT_OK(Admit());
  std::error_code ec;
  fs::resize_file(path, length, ec);
  if (ec) {
    return Status::IOError("cannot truncate '" + path + "' to " +
                           std::to_string(length) + " bytes: " + ec.message());
  }
  return Status::OK();
}

Status Io::RemoveAll(const std::string& path) const {
  SYSTOLIC_RETURN_NOT_OK(Admit());
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IOError("cannot remove '" + path + "': " + ec.message());
  }
  return Status::OK();
}

Result<std::string> Io::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("error reading '" + path + "'");
  }
  return contents.str();
}

Result<uint64_t> Io::FileSize(const std::string& path) {
  std::error_code ec;
  const uintmax_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat '" + path + "': " + ec.message());
  }
  return static_cast<uint64_t>(size);
}

bool Io::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

std::vector<std::string> Io::ListDir(const std::string& path) {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(path, ec);
  if (ec) return names;
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace durability
}  // namespace systolic
