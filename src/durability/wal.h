#ifndef SYSTOLIC_DURABILITY_WAL_H_
#define SYSTOLIC_DURABILITY_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace durability {

/// The write-ahead log format (DESIGN S21).
///
/// A WAL file is a one-line header
///   SYSWAL1 <checkpoint-id>\n
/// followed by frames. Each frame is
///   [u32 payload-length LE][u32 CRC-32 of payload LE][payload bytes]
/// and each payload is one *logical* record — a committed catalog mutation,
/// not a page image:
///   domain <name> <int64|string|bool>
///   put <name> <set|multi> \n columns <col>:<dom>:<type> ... \n data \n <csv>
///   append <name>          \n columns <col>:<dom>:<type> ... \n data \n <csv>
///   drop <name>
///   ack <token> <request-id> <records>
///   commit <n>
/// Identifiers use rel::EscapeIdentifier; tuple data is RFC-4180 CSV with a
/// header line. A `commit <n>` marker seals the preceding n records into one
/// atomic group: recovery applies only complete, sealed groups and truncates
/// everything after the last marker, so a torn tail (short frame, bad CRC,
/// or an unsealed group) can never surface as a hybrid catalog. Cross-session
/// group commit (DESIGN S24) needs no format change: a batched append is just
/// N sealed groups in one write, and a crash inside it recovers to a
/// group-boundary prefix of the batch.
///
/// `ack` records (DESIGN S26) ride inside a commit group to make the
/// request-reliability dedup crash-safe: they name the session token and the
/// per-session request id whose command produced the group, so a client that
/// retries a request whose reply was lost to a crash is answered
/// "already committed" instead of re-executed. They mutate nothing on replay
/// (recovery collects them into a token -> highest-acked-id map).
///
/// The header's checkpoint id ties the log to the checkpoint it extends: a
/// crash between the CURRENT pointer flip and the WAL reset leaves a log
/// whose id predates the checkpoint, and recovery discards it wholesale
/// (its records are already inside the checkpoint).

inline constexpr std::string_view kWalMagic = "SYSWAL1";
inline constexpr char kWalFileName[] = "WAL";

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
uint32_t Crc32(std::string_view bytes);

/// One decoded WAL record.
struct WalRecord {
  enum class Kind { kCreateDomain, kPut, kAppend, kDrop, kAck, kCommit };

  /// Column spec carried by put/append records, enough to recreate shared
  /// domains on a fresh catalog.
  struct ColumnSpec {
    std::string column;
    std::string domain;
    rel::ValueType type = rel::ValueType::kInt64;
  };

  Kind kind = Kind::kCommit;
  /// Domain or relation name; the session token for kAck (unused for
  /// kCommit).
  std::string name;
  rel::ValueType type = rel::ValueType::kInt64;  ///< kCreateDomain only.
  rel::RelationKind relation_kind = rel::RelationKind::kSet;  ///< kPut only.
  std::vector<ColumnSpec> columns;  ///< kPut / kAppend.
  std::string csv;                  ///< kPut / kAppend: header + tuple rows.
  uint64_t group_size = 0;          ///< kCommit: records sealed by the marker.
  uint64_t request_id = 0;          ///< kAck: per-session request id.
  uint64_t ack_records = 0;         ///< kAck: records the request committed.
};

/// Record payload encoders. Encoding decodes tuples through their domains
/// (codes are session-local; values are what must survive).
std::string EncodeCreateDomain(const std::string& name, rel::ValueType type);
Result<std::string> EncodePut(const std::string& name,
                              const rel::Relation& relation);
Result<std::string> EncodeAppend(const std::string& name,
                                 const rel::Relation& batch);
std::string EncodeDrop(const std::string& name);
std::string EncodeAck(const std::string& token, uint64_t request_id,
                      uint64_t records);
std::string EncodeCommit(uint64_t group_size);

/// Parses one record payload; DataCorruption on any malformed input.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// Appends one length+CRC framed payload to `wal`.
void AppendFrame(std::string* wal, std::string_view payload);

/// Result of parsing the frame starting at `offset`: `complete` is false on
/// a short or CRC-corrupt frame (a torn tail), in which case `end` is
/// meaningless; otherwise `payload` views into `wal` and `end` is the offset
/// one past the frame.
struct WalFrame {
  bool complete = false;
  size_t end = 0;
  std::string_view payload;
};
WalFrame ParseFrame(std::string_view wal, size_t offset);

/// The header line for a log extending checkpoint `checkpoint_id`.
std::string WalHeader(uint64_t checkpoint_id);

/// Parses a WAL header; returns {checkpoint id, offset past the header}.
/// DataCorruption if the magic or id is malformed or torn.
Result<std::pair<uint64_t, size_t>> ParseWalHeader(std::string_view bytes);

/// Applies one mutation record to `catalog`. Put/append recreate missing
/// domains from their column specs (preserving sharing by name) and fail
/// with DataCorruption on type conflicts; ack records are no-ops (they carry
/// dedup metadata, not catalog state); commit markers are not applicable.
Status ApplyWalRecord(const WalRecord& record, rel::Catalog* catalog);

}  // namespace durability
}  // namespace systolic

#endif  // SYSTOLIC_DURABILITY_WAL_H_
