#ifndef SYSTOLIC_DURABILITY_CRASH_PLAN_H_
#define SYSTOLIC_DURABILITY_CRASH_PLAN_H_

#include <cstddef>
#include <cstdint>

#include "faults/fault_plan.h"

namespace systolic {
namespace durability {

/// Deterministic crash injection for the durable write path, the storage
/// counterpart of faults::FaultPlan (DESIGN S20): instead of corrupting
/// words on a chip's wires, a CrashInjector cuts the ordered sequence of
/// durable-IO *units* after a chosen budget and makes everything past the
/// cut fail as if the process had died there.
///
/// The model is ordered-write prefix persistence: every byte handed to
/// Io::WriteFile/AppendFile consumes one unit per byte, and every metadata
/// operation (rename, fsync, truncate, mkdir, remove) consumes exactly one
/// unit. A cut that lands inside a data write persists the prefix — a torn
/// write; a cut that lands on a metadata unit skips the operation entirely
/// (rename is atomic: it either happened or it did not). After the cut every
/// further IO call fails with Io::kCrashMessage, so the code under test
/// cannot accidentally keep writing "after death".
///
/// A probe run with an unlimited budget measures the total unit count of a
/// workload; enumerating cuts 0..total-1 then visits every byte and record
/// boundary, including both sides of each rename.
///
/// A `transient` injector models a survivable IO error (a passing ENOSPC,
/// say) instead of process death: the cut fails exactly one operation — a
/// torn write or one skipped metadata op — and every later call succeeds
/// with an unlimited budget. The caller lives on and must cope with the
/// failure, which is how the torn-commit rollback path is exercised.
class CrashInjector {
 public:
  static constexpr uint64_t kNoCrash = UINT64_MAX;

  explicit CrashInjector(uint64_t cut_units = kNoCrash, bool transient = false)
      : remaining_(cut_units), transient_(transient) {}

  /// Admits up to `want` data bytes; returns how many landed. Admitting
  /// fewer than requested marks the injector crashed (torn write) — or, for
  /// a transient injector, revives it for every later call.
  size_t AdmitBytes(size_t want) {
    if (crashed_) return 0;
    const uint64_t granted =
        remaining_ < want ? remaining_ : static_cast<uint64_t>(want);
    remaining_ -= granted;
    used_ += granted;
    if (granted < want) Fail();
    return static_cast<size_t>(granted);
  }

  /// Admits one metadata operation; false = the crash landed first.
  bool AdmitOp() {
    if (crashed_) return false;
    if (remaining_ == 0) {
      Fail();
      return false;
    }
    --remaining_;
    ++used_;
    return true;
  }

  /// True once the cut has been reached; all later IO must fail.
  bool crashed() const { return crashed_; }

  /// Units admitted so far. For a kNoCrash probe run this is the workload's
  /// total unit count — the exclusive upper bound of interesting cuts.
  uint64_t units_used() const { return used_; }

 private:
  void Fail() {
    if (transient_) {
      remaining_ = kNoCrash;  // one failure, then recovered
      transient_ = false;
    } else {
      crashed_ = true;
    }
  }

  uint64_t remaining_;
  uint64_t used_ = 0;
  bool transient_ = false;
  bool crashed_ = false;
};

/// Seeded selection of crash points, following the fault_plan.h idiom: no
/// sequential RNG, just keyed hashing of (seed, trial), so trial t of seed s
/// cuts the write path at exactly the same unit on every host and in any
/// execution order.
class CrashPlan {
 public:
  explicit CrashPlan(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// The cut (in [0, total_units]) for trial `trial` of a workload with
  /// `total_units` units; total_units itself means "no crash".
  uint64_t CutFor(uint64_t trial, uint64_t total_units) const {
    const uint64_t h =
        faults::MixFaultKey(faults::MixFaultKey(seed_ ^ 0xc4a5'11feULL) ^
                            trial);  // crash salt
    return h % (total_units + 1);
  }

  CrashInjector InjectorFor(uint64_t trial, uint64_t total_units) const {
    return CrashInjector(CutFor(trial, total_units));
  }

 private:
  uint64_t seed_;
};

}  // namespace durability
}  // namespace systolic

#endif  // SYSTOLIC_DURABILITY_CRASH_PLAN_H_
