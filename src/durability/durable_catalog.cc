#include "durability/durable_catalog.h"

#include <algorithm>
#include <optional>

#include "relational/storage.h"
#include "util/strings.h"

namespace systolic {
namespace durability {

namespace {

constexpr char kCurrentFileName[] = "CURRENT";
constexpr char kCheckpointPrefix[] = "chk-";

std::string CheckpointName(uint64_t id) {
  return kCheckpointPrefix + std::to_string(id);
}

Result<uint64_t> ParseCheckpointName(std::string_view token) {
  const std::string_view prefix(kCheckpointPrefix);
  int64_t id = 0;
  if (token.substr(0, prefix.size()) != prefix ||
      !ParseInt64(token.substr(prefix.size()), &id) || id <= 0) {
    return Status::DataCorruption("malformed checkpoint name '" +
                                  std::string(token) + "'");
  }
  return static_cast<uint64_t>(id);
}

std::vector<WalRecord::ColumnSpec> SpecsOf(const rel::Schema& schema) {
  std::vector<WalRecord::ColumnSpec> specs;
  for (const rel::Column& column : schema.columns()) {
    specs.push_back(WalRecord::ColumnSpec{column.name, column.domain->name(),
                                          column.domain->type()});
  }
  return specs;
}

}  // namespace

Result<std::unique_ptr<DurableCatalog>> DurableCatalog::Open(
    std::string directory, Io io) {
  std::unique_ptr<DurableCatalog> durable(
      new DurableCatalog(std::move(directory), io));
  // Not shared yet, but recovery initializes guarded fields: Open is held
  // to the same proof obligations as every other non-constructor.
  util::MutexLock lock(&durable->mutex_);
  SYSTOLIC_RETURN_NOT_OK(durable->RecoverLocked());
  return durable;
}

std::string DurableCatalog::Path(const std::string& name) const {
  return directory_ + "/" + name;
}

Status DurableCatalog::RecoverLocked() {
  SYSTOLIC_RETURN_NOT_OK(io_.Mkdirs(directory_));
  catalog_ = std::make_unique<rel::Catalog>();
  checkpoint_id_ = 0;
  wal_live_records_ = 0;

  // The literal CURRENT token, not CheckpointName(checkpoint_id_): a
  // non-canonical spelling ("chk-007") must still protect the directory
  // CURRENT points at from garbage collection below.
  std::string live_checkpoint = CheckpointName(checkpoint_id_);
  const std::string current_path = Path(kCurrentFileName);
  if (Io::Exists(current_path)) {
    SYSTOLIC_ASSIGN_OR_RETURN(std::string current, Io::ReadFile(current_path));
    const std::string token(Trim(current));
    SYSTOLIC_ASSIGN_OR_RETURN(checkpoint_id_, ParseCheckpointName(token));
    SYSTOLIC_ASSIGN_OR_RETURN(catalog_,
                              rel::LoadCatalog(Path(token)));
    live_checkpoint = token;
  }

  if (Io::Exists(WalPath())) {
    SYSTOLIC_ASSIGN_OR_RETURN(std::string bytes, Io::ReadFile(WalPath()));
    Result<std::pair<uint64_t, size_t>> header = ParseWalHeader(bytes);
    if (!header.ok() || header->first != checkpoint_id_) {
      // Torn header, or a log that predates the live checkpoint (the crash
      // landed between the CURRENT flip and the WAL reset): every record it
      // could hold is already inside the checkpoint. Discard it.
      SYSTOLIC_RETURN_NOT_OK(ResetWalLocked());
    } else {
      SYSTOLIC_RETURN_NOT_OK(ReplayWalLocked(bytes, header->second));
    }
  } else {
    SYSTOLIC_RETURN_NOT_OK(ResetWalLocked());
  }

  return CollectGarbageLocked(live_checkpoint);
}

Status DurableCatalog::ReplayWalLocked(const std::string& bytes,
                                       size_t header_end) {
  size_t offset = header_end;
  size_t durable_end = header_end;
  std::vector<WalRecord> group;
  size_t applied = 0;
  bool torn = false;
  while (offset < bytes.size()) {
    const WalFrame frame = ParseFrame(bytes, offset);
    if (!frame.complete) {
      torn = true;  // short frame or CRC mismatch: the crash's torn tail
      break;
    }
    // A CRC-valid frame that does not decode is real corruption, not a torn
    // write; fail loudly rather than silently dropping acknowledged data.
    SYSTOLIC_ASSIGN_OR_RETURN(WalRecord record,
                              DecodeWalRecord(frame.payload));
    if (record.kind == WalRecord::Kind::kCommit) {
      if (record.group_size != group.size()) {
        return Status::DataCorruption(
            "WAL commit marker seals " + std::to_string(record.group_size) +
            " records but " + std::to_string(group.size()) + " are pending");
      }
      for (const WalRecord& r : group) {
        if (r.kind == WalRecord::Kind::kAck) {
          RecoveredAck& ack = recovered_acks_[r.name];
          if (r.request_id >= ack.request_id) {
            ack = RecoveredAck{r.request_id, r.ack_records};
          }
          continue;
        }
        SYSTOLIC_RETURN_NOT_OK(ApplyWalRecord(r, catalog_.get()));
      }
      applied += group.size();
      group.clear();
      durable_end = frame.end;
    } else {
      group.push_back(std::move(record));
    }
    offset = frame.end;
  }
  if (torn || !group.empty() || offset != bytes.size()) {
    SYSTOLIC_RETURN_NOT_OK(io_.Truncate(WalPath(), durable_end));
  }
  wal_live_records_ = applied;
  stats_.recovered_records += applied;
  return Status::OK();
}

Status DurableCatalog::ResetWalLocked() {
  const std::string tmp = WalPath() + ".tmp";
  SYSTOLIC_RETURN_NOT_OK(io_.WriteFile(tmp, WalHeader(checkpoint_id_)));
  SYSTOLIC_RETURN_NOT_OK(io_.Fsync(tmp));
  SYSTOLIC_RETURN_NOT_OK(io_.Rename(tmp, WalPath()));
  SYSTOLIC_RETURN_NOT_OK(io_.FsyncDir(directory_));
  wal_live_records_ = 0;
  return Status::OK();
}

Status DurableCatalog::CollectGarbageLocked(
    const std::string& live_checkpoint) {
  for (const std::string& name : Io::ListDir(directory_)) {
    const bool stale_tmp =
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp";
    const bool orphan_checkpoint =
        name.rfind(kCheckpointPrefix, 0) == 0 && name != live_checkpoint;
    if (stale_tmp || orphan_checkpoint) {
      SYSTOLIC_RETURN_NOT_OK(io_.RemoveAll(Path(name)));
    }
  }
  return Status::OK();
}

Status DurableCatalog::StageLocked(WalRecord record, std::string payload) {
  staged_.emplace_back(std::move(record), std::move(payload));
  return Status::OK();
}

Result<std::vector<WalRecord::ColumnSpec>> DurableCatalog::StagedColumnsLocked(
    const std::string& name) const {
  // The staged group, then the sealed-but-uncommitted batch, rewrite history
  // front to back; the last put/drop for `name` wins, falling back to the
  // live catalog. Sealed groups must be visible here: they will apply before
  // the staged group at CommitSealedGroups/recovery, so a record validated
  // blind to them could fail to apply after it was sealed.
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    const WalRecord& record = it->first;
    if (record.name != name) continue;
    if (record.kind == WalRecord::Kind::kPut) return record.columns;
    if (record.kind == WalRecord::Kind::kDrop) {
      return Status::NotFound("relation '" + name +
                              "' is dropped in the open group");
    }
  }
  for (auto group = sealed_.rbegin(); group != sealed_.rend(); ++group) {
    for (auto it = group->rbegin(); it != group->rend(); ++it) {
      const WalRecord& record = it->first;
      if (record.name != name) continue;
      if (record.kind == WalRecord::Kind::kPut) return record.columns;
      if (record.kind == WalRecord::Kind::kDrop) {
        return Status::NotFound("relation '" + name +
                                "' is dropped in a sealed group");
      }
    }
  }
  SYSTOLIC_ASSIGN_OR_RETURN(const rel::Relation* relation,
                            catalog_->GetRelation(name));
  return SpecsOf(relation->schema());
}

Result<rel::ValueType> DurableCatalog::StagedDomainTypeLocked(
    const std::string& name) const {
  // Staged records only ever create domains (a drop removes a relation, not
  // its domains), and conflicts are rejected at staging time, so any staged
  // or sealed mention of `name` — explicit create-domain or a put/append
  // column that implicitly creates it — fixes its type.
  const auto scan = [&name](const MutationGroup& group)
      -> std::optional<rel::ValueType> {
    for (const auto& [record, payload] : group) {
      if (record.kind == WalRecord::Kind::kCreateDomain &&
          record.name == name) {
        return record.type;
      }
      for (const WalRecord::ColumnSpec& spec : record.columns) {
        if (spec.domain == name) return spec.type;
      }
    }
    return std::nullopt;
  };
  if (const std::optional<rel::ValueType> type = scan(staged_)) return *type;
  for (const MutationGroup& group : sealed_) {
    if (const std::optional<rel::ValueType> type = scan(group)) return *type;
  }
  SYSTOLIC_ASSIGN_OR_RETURN(std::shared_ptr<rel::Domain> live,
                            catalog_->GetDomain(name));
  return live->type();
}

Status DurableCatalog::LogCreateDomain(const std::string& name,
                                       rel::ValueType type) {
  util::MutexLock lock(&mutex_);
  if (name.empty()) {
    return Status::InvalidArgument("domain name must not be empty");
  }
  // Resolving through the staged group also catches a domain a staged
  // put/append implicitly created — re-creating it would make the sealed
  // group fail to apply at Commit/recovery.
  if (StagedDomainTypeLocked(name).ok()) {
    return Status::AlreadyExists("domain '" + name + "' already exists");
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kCreateDomain;
  record.name = name;
  record.type = type;
  return StageLocked(std::move(record), EncodeCreateDomain(name, type));
}

Status DurableCatalog::LogPut(const std::string& name,
                              const rel::Relation& relation) {
  util::MutexLock lock(&mutex_);
  return LogPutLocked(name, relation);
}

Status DurableCatalog::LogPutLocked(const std::string& name,
                                    const rel::Relation& relation) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  for (size_t c = 0; c < relation.schema().num_columns(); ++c) {
    const rel::Column& column = relation.schema().column(c);
    if (column.name.empty() || column.domain->name().empty()) {
      return Status::InvalidArgument("cannot log relation '" + name +
                                     "': empty column or domain name");
    }
    // The domain's type must agree with the staged group and live catalog
    // AND with this relation's own earlier columns (fresh Domain objects may
    // reuse a name at another type) — any conflict would make the sealed
    // record fail to apply at Commit/recovery.
    Result<rel::ValueType> existing =
        StagedDomainTypeLocked(column.domain->name());
    for (size_t prev = 0; !existing.ok() && prev < c; ++prev) {
      const rel::Column& other = relation.schema().column(prev);
      if (other.domain->name() == column.domain->name()) {
        existing = other.domain->type();
      }
    }
    if (existing.ok() && *existing != column.domain->type()) {
      return Status::Incompatible(
          "domain '" + column.domain->name() + "' is already registered as " +
          rel::ValueTypeToString(*existing));
    }
  }
  SYSTOLIC_ASSIGN_OR_RETURN(std::string payload, EncodePut(name, relation));
  // Re-decode to populate the staged record exactly as recovery will see it.
  SYSTOLIC_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
  return StageLocked(std::move(record), std::move(payload));
}

Status DurableCatalog::LogAppend(const std::string& name,
                                 const rel::Relation& batch) {
  util::MutexLock lock(&mutex_);
  return LogAppendLocked(name, batch);
}

Status DurableCatalog::LogAppendLocked(const std::string& name,
                                       const rel::Relation& batch) {
  SYSTOLIC_ASSIGN_OR_RETURN(std::vector<WalRecord::ColumnSpec> target,
                            StagedColumnsLocked(name));
  const std::vector<WalRecord::ColumnSpec> batch_specs =
      SpecsOf(batch.schema());
  if (target.size() != batch_specs.size()) {
    return Status::Incompatible("append batch arity " +
                                std::to_string(batch_specs.size()) +
                                " != relation arity " +
                                std::to_string(target.size()));
  }
  for (size_t c = 0; c < target.size(); ++c) {
    if (target[c].column != batch_specs[c].column ||
        target[c].domain != batch_specs[c].domain ||
        target[c].type != batch_specs[c].type) {
      return Status::Incompatible("append batch schema mismatch at column " +
                                  std::to_string(c) + " of '" + name + "'");
    }
  }
  SYSTOLIC_ASSIGN_OR_RETURN(std::string payload, EncodeAppend(name, batch));
  SYSTOLIC_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
  return StageLocked(std::move(record), std::move(payload));
}

Status DurableCatalog::LogDrop(const std::string& name) {
  util::MutexLock lock(&mutex_);
  return LogDropLocked(name);
}

Status DurableCatalog::LogDropLocked(const std::string& name) {
  SYSTOLIC_RETURN_NOT_OK(StagedColumnsLocked(name).status());  // must exist
  WalRecord record;
  record.kind = WalRecord::Kind::kDrop;
  record.name = name;
  return StageLocked(std::move(record), EncodeDrop(name));
}

Status DurableCatalog::LogAck(const std::string& token, uint64_t request_id,
                              uint64_t records) {
  util::MutexLock lock(&mutex_);
  if (token.empty() || request_id == 0) {
    return Status::InvalidArgument(
        "an ack record needs a session token and a positive request id");
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kAck;
  record.name = token;
  record.request_id = request_id;
  record.ack_records = records;
  return StageLocked(std::move(record), EncodeAck(token, request_id, records));
}

Status DurableCatalog::AppendGroupsLocked(
    const std::vector<const MutationGroup*>& groups) {
  if (wal_poisoned_) {
    return Status::IOError(
        "the WAL carries a torn tail from a failed commit; CHECKPOINT to "
        "rebuild it before committing again");
  }
  std::string frames;
  size_t records = 0;
  for (const MutationGroup* group : groups) {
    for (const auto& [record, payload] : *group) {
      AppendFrame(&frames, payload);
    }
    AppendFrame(&frames, EncodeCommit(group->size()));
    records += group->size();
  }
  // One append + one fsync for the whole batch: every group becomes durable
  // atomically-or-not, a crash inside the append leaves a tail recovery cuts
  // back to the last sealed group boundary, and N groups share the fsync.
  SYSTOLIC_ASSIGN_OR_RETURN(const uint64_t wal_end, Io::FileSize(WalPath()));
  Status appended = io_.AppendFile(WalPath(), frames);
  if (appended.ok()) appended = io_.Fsync(WalPath());
  if (!appended.ok()) {
    // A survivable partial append (ENOSPC, say) leaves torn frames
    // mid-file; a retried commit would append the group after them, and
    // recovery would then truncate away — or refuse to open over — every
    // later acknowledged group. Cut the WAL back to its pre-append length;
    // if even that fails, poison the commit path until a Checkpoint
    // rebuilds the log.
    if (!io_.Truncate(WalPath(), wal_end).ok()) wal_poisoned_ = true;
    return appended;
  }
  for (const MutationGroup* group : groups) {
    for (const auto& [record, payload] : *group) {
      SYSTOLIC_RETURN_NOT_OK(ApplyWalRecord(record, catalog_.get()));
    }
  }
  stats_.wal_records += records;
  wal_live_records_ += records;
  return Status::OK();
}

Status DurableCatalog::Commit() {
  util::MutexLock lock(&mutex_);
  return CommitLocked();
}

Status DurableCatalog::CommitLocked() {
  if (staged_.empty()) return Status::OK();
  if (!sealed_.empty()) {
    // Sealed groups were validated as applying BEFORE the open group; letting
    // the open group jump the queue would invert WAL order vs validation.
    return Status::InvalidArgument(
        "sealed groups are pending; use SealStagedGroup + CommitSealedGroups");
  }
  SYSTOLIC_RETURN_NOT_OK(AppendGroupsLocked({&staged_}));
  staged_.clear();
  return Status::OK();
}

void DurableCatalog::Abort() {
  util::MutexLock lock(&mutex_);
  staged_.clear();
}

void DurableCatalog::AbortSealedGroups() {
  util::MutexLock lock(&mutex_);
  sealed_.clear();
}

Status DurableCatalog::SealStagedGroup() {
  util::MutexLock lock(&mutex_);
  if (staged_.empty()) return Status::OK();
  if (wal_poisoned_) {
    return Status::IOError(
        "the WAL carries a torn tail from a failed commit; CHECKPOINT to "
        "rebuild it before committing again");
  }
  sealed_.push_back(std::move(staged_));
  staged_.clear();
  return Status::OK();
}

Status DurableCatalog::CommitSealedGroups() {
  util::MutexLock lock(&mutex_);
  if (!staged_.empty()) {
    return Status::InvalidArgument(
        "a mutation group is still open; seal or abort it before committing "
        "the sealed batch");
  }
  if (sealed_.empty()) return Status::OK();
  std::vector<const MutationGroup*> groups;
  groups.reserve(sealed_.size());
  for (const MutationGroup& group : sealed_) groups.push_back(&group);
  SYSTOLIC_RETURN_NOT_OK(AppendGroupsLocked(groups));
  sealed_.clear();
  return Status::OK();
}

Status DurableCatalog::Put(const std::string& name,
                           const rel::Relation& relation) {
  util::MutexLock lock(&mutex_);
  if (!staged_.empty()) {
    return Status::InvalidArgument("a mutation group is open; use LogPut");
  }
  SYSTOLIC_RETURN_NOT_OK(LogPutLocked(name, relation));
  return CommitLocked();
}

Status DurableCatalog::Append(const std::string& name,
                              const rel::Relation& batch) {
  util::MutexLock lock(&mutex_);
  if (!staged_.empty()) {
    return Status::InvalidArgument("a mutation group is open; use LogAppend");
  }
  SYSTOLIC_RETURN_NOT_OK(LogAppendLocked(name, batch));
  return CommitLocked();
}

Status DurableCatalog::Drop(const std::string& name) {
  util::MutexLock lock(&mutex_);
  if (!staged_.empty()) {
    return Status::InvalidArgument("a mutation group is open; use LogDrop");
  }
  SYSTOLIC_RETURN_NOT_OK(LogDropLocked(name));
  return CommitLocked();
}

Status DurableCatalog::Checkpoint() {
  util::MutexLock lock(&mutex_);
  if (!staged_.empty()) {
    return Status::InvalidArgument(
        "cannot checkpoint while a mutation group is open");
  }
  if (!sealed_.empty()) {
    return Status::InvalidArgument(
        "cannot checkpoint while sealed commit groups are pending");
  }
  SYSTOLIC_ASSIGN_OR_RETURN(std::vector<rel::CatalogFile> files,
                            rel::SerializeCatalog(*catalog_));
  const uint64_t next = checkpoint_id_ + 1;
  const std::string chk = CheckpointName(next);
  const std::string tmp = Path(chk + ".tmp");
  if (Io::Exists(tmp)) SYSTOLIC_RETURN_NOT_OK(io_.RemoveAll(tmp));
  SYSTOLIC_RETURN_NOT_OK(io_.Mkdirs(tmp));
  for (const rel::CatalogFile& file : files) {
    SYSTOLIC_RETURN_NOT_OK(io_.WriteFile(tmp + "/" + file.name,
                                         file.contents));
    SYSTOLIC_RETURN_NOT_OK(io_.Fsync(tmp + "/" + file.name));
  }
  SYSTOLIC_RETURN_NOT_OK(io_.FsyncDir(tmp));
  // A checkpoint retried after a failed CURRENT flip finds the previous
  // attempt's fully-renamed directory; clear it like the stale tmp dir so
  // the rename below cannot wedge on a non-empty target.
  if (Io::Exists(Path(chk))) SYSTOLIC_RETURN_NOT_OK(io_.RemoveAll(Path(chk)));
  SYSTOLIC_RETURN_NOT_OK(io_.Rename(tmp, Path(chk)));
  SYSTOLIC_RETURN_NOT_OK(io_.FsyncDir(directory_));
  // The CURRENT flip is the commit point: before it, recovery uses the old
  // checkpoint + WAL; after it, the new checkpoint (with any stale WAL
  // discarded by the header id check).
  SYSTOLIC_RETURN_NOT_OK(io_.WriteFile(Path("CURRENT.tmp"), chk + "\n"));
  SYSTOLIC_RETURN_NOT_OK(io_.Fsync(Path("CURRENT.tmp")));
  SYSTOLIC_RETURN_NOT_OK(io_.Rename(Path("CURRENT.tmp"),
                                    Path(kCurrentFileName)));
  SYSTOLIC_RETURN_NOT_OK(io_.FsyncDir(directory_));
  const uint64_t previous = checkpoint_id_;
  checkpoint_id_ = next;
  SYSTOLIC_RETURN_NOT_OK(ResetWalLocked());
  wal_poisoned_ = false;  // the rebuilt log has no torn tail
  if (previous > 0) {
    SYSTOLIC_RETURN_NOT_OK(io_.RemoveAll(Path(CheckpointName(previous))));
  }
  stats_.checkpoints += 1;
  return Status::OK();
}

}  // namespace durability
}  // namespace systolic
