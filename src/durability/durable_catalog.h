#ifndef SYSTOLIC_DURABILITY_DURABLE_CATALOG_H_
#define SYSTOLIC_DURABILITY_DURABLE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "durability/io.h"
#include "durability/wal.h"
#include "relational/catalog.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace systolic {
namespace durability {

/// The highest request id a session token committed through the WAL before
/// the last crash, recovered from `ack` records (DESIGN S26): the server's
/// retry dedup consults this so a client whose COMMIT reply was lost to a
/// crash is answered "already committed" instead of re-executed.
struct RecoveredAck {
  uint64_t request_id = 0;
  uint64_t records = 0;
};

/// Session counters surfaced through the command layer and ExecStats.
struct DurabilityStats {
  size_t wal_records = 0;        ///< Mutation records fsync'd this session.
  size_t checkpoints = 0;        ///< Checkpoints completed this session.
  size_t recovered_records = 0;  ///< Records replayed by Open's recovery.
};

/// A catalog that survives crashes (DESIGN S21): every committed mutation is
/// a WAL record fsync'd before the caller is acknowledged, checkpoints are
/// rename-swapped atomically, and Open recovers by loading the last durable
/// checkpoint and replaying the sealed WAL tail.
///
/// Directory layout:
///   CURRENT     one line naming the live checkpoint ("chk-<n>"); absent
///               until the first checkpoint. Rename-swapped, never edited.
///   chk-<n>/    a SaveCatalog-format directory (MANIFEST + CSVs).
///   WAL         header "SYSWAL1 <n>" + framed records (see wal.h).
///
/// Invariant: after a crash at ANY point of the write path, Open yields a
/// catalog bit-identical (under rel::SerializeCatalog) to the state after
/// some prefix of the acknowledged commits — never a hybrid. The crash
/// fuzzer (tests/crash_recovery_fuzz_test.cc) enumerates every IO unit of
/// the write path to hold this to account.
///
/// Mutations are grouped: Log* stages records, Commit appends the group plus
/// a sealing `commit` marker in ONE file append, fsyncs, and only then
/// applies the group to the in-memory catalog. Recovery replays only sealed
/// groups, so a multi-relation transaction commit is all-or-nothing.
///
/// Thread safety: every public method locks the internal kWal-rank mutex —
/// the SINK of the lock hierarchy (DESIGN §2.10). The group-commit leader
/// calls in with no other lock held (SharedCatalog releases its own mutex
/// around ProcessBatch), so the ordering holds trivially; callers must
/// still serialize logically conflicting operations themselves (the
/// leader_active_ handoff, or a single session driving the embedded path).
class DurableCatalog {
 public:
  /// Opens (creating if absent) the durable directory and recovers.
  static Result<std::unique_ptr<DurableCatalog>> Open(std::string directory,
                                                      Io io = Io());

  const std::string& directory() const { return directory_; }
  /// The recovered in-memory catalog. The reference stays valid for the
  /// DurableCatalog's lifetime (the pointer is set once, at Open); the
  /// POINTEE is mutated by the commit path, so concurrent readers need the
  /// caller-level exclusivity described in the class comment.
  const rel::Catalog& catalog() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return *catalog_;
  }
  DurabilityStats stats() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return stats_;
  }
  uint64_t checkpoint_id() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return checkpoint_id_;
  }
  /// Sealed records currently in the WAL (replayed on next Open).
  size_t wal_live_records() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return wal_live_records_;
  }
  size_t staged_records() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return staged_.size();
  }

  /// Stages one mutation into the open group. Validation happens here, so a
  /// staged record is guaranteed to apply cleanly at Commit / recovery.
  Status LogCreateDomain(const std::string& name, rel::ValueType type)
      EXCLUDES(mutex_);
  Status LogPut(const std::string& name, const rel::Relation& relation)
      EXCLUDES(mutex_);
  Status LogAppend(const std::string& name, const rel::Relation& batch)
      EXCLUDES(mutex_);
  Status LogDrop(const std::string& name) EXCLUDES(mutex_);
  /// Stages a request-dedup ack into the open group, making the (token,
  /// request id) pair durable atomically with the group's mutations.
  Status LogAck(const std::string& token, uint64_t request_id,
                uint64_t records) EXCLUDES(mutex_);

  /// Acks recovered by Open from the live WAL, token -> highest acked
  /// request. The dedup window is the live WAL: Checkpoint resets it (by
  /// then every acked reply has long been delivered or abandoned).
  std::map<std::string, RecoveredAck> recovered_acks() const
      EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return recovered_acks_;
  }

  /// Seals and fsyncs the staged group, then applies it to the in-memory
  /// catalog. No-op for an empty group. On an IO error nothing was
  /// acknowledged: the group stays staged (retry or Abort), and any torn
  /// frames a partial append left behind are truncated away so a retry
  /// cannot append the group after them (recovery would then discard or
  /// refuse acknowledged groups). If even that truncation fails the WAL is
  /// poisoned: every further Commit fails without touching the file until a
  /// successful Checkpoint rebuilds the log.
  Status Commit() EXCLUDES(mutex_);

  /// Discards the staged group.
  void Abort() EXCLUDES(mutex_);

  /// Cross-session group commit (DESIGN S24). SealStagedGroup moves the
  /// staged group — validated exactly as Commit would — into the pending
  /// commit batch without touching the file; no-op for an empty group.
  /// CommitSealedGroups then appends EVERY sealed group, each closed by its
  /// own `commit` marker, in ONE file append followed by ONE fsync, and
  /// applies them to the in-memory catalog in seal order. This is what lets
  /// a server amortise a single fsync over N concurrent sessions' COMMITs:
  /// the on-disk format is unchanged (recovery already replays any number of
  /// sealed groups), and a crash inside the batched append leaves some
  /// group-boundary prefix of the batch — never a hybrid within a group, and
  /// never touching previously acknowledged groups. Error handling matches
  /// Commit: nothing was acknowledged, the sealed batch stays pending (retry
  /// or AbortSealedGroups), torn frames are truncated away, and an
  /// untruncatable tail poisons the WAL until a Checkpoint rebuilds it.
  Status SealStagedGroup() EXCLUDES(mutex_);
  Status CommitSealedGroups() EXCLUDES(mutex_);
  /// Discards every sealed-but-uncommitted group.
  void AbortSealedGroups() EXCLUDES(mutex_);
  size_t sealed_groups() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return sealed_.size();
  }

  /// Single-mutation conveniences; fail if a group is open.
  Status Put(const std::string& name, const rel::Relation& relation)
      EXCLUDES(mutex_);
  Status Append(const std::string& name, const rel::Relation& batch)
      EXCLUDES(mutex_);
  Status Drop(const std::string& name) EXCLUDES(mutex_);

  /// Writes chk-<n+1> with the rename-swap protocol, flips CURRENT, resets
  /// the WAL and garbage-collects the old checkpoint. Fails (without
  /// touching disk) while a mutation group is open.
  Status Checkpoint() EXCLUDES(mutex_);

 private:
  DurableCatalog(std::string directory, Io io)
      : directory_(std::move(directory)), io_(io) {}

  using MutationGroup = std::vector<std::pair<WalRecord, std::string>>;

  std::string Path(const std::string& name) const;
  std::string WalPath() const { return Path(kWalFileName); }
  /// Locked bodies of the public staging/commit entry points, shared by the
  /// single-mutation conveniences (Put = LogPutLocked + CommitLocked).
  Status LogPutLocked(const std::string& name, const rel::Relation& relation)
      REQUIRES(mutex_);
  Status LogAppendLocked(const std::string& name, const rel::Relation& batch)
      REQUIRES(mutex_);
  Status LogDropLocked(const std::string& name) REQUIRES(mutex_);
  Status CommitLocked() REQUIRES(mutex_);
  /// The shared durable tail of Commit / CommitSealedGroups: frames every
  /// group with its sealing marker, appends them all in one write, fsyncs
  /// once, then applies every record in order. On failure nothing was
  /// acknowledged and the torn tail is truncated (or the WAL poisoned).
  Status AppendGroupsLocked(const std::vector<const MutationGroup*>& groups)
      REQUIRES(mutex_);
  Status RecoverLocked() REQUIRES(mutex_);
  Status ReplayWalLocked(const std::string& bytes, size_t header_end)
      REQUIRES(mutex_);
  /// Rewrites the WAL to an empty log for the current checkpoint id.
  Status ResetWalLocked() REQUIRES(mutex_);
  Status CollectGarbageLocked(const std::string& live_checkpoint)
      REQUIRES(mutex_);
  Status StageLocked(WalRecord record, std::string payload) REQUIRES(mutex_);
  /// The columns `name` would have after the staged group, or NotFound if it
  /// would not exist; `from_catalog` receives the live relation if any.
  Result<std::vector<WalRecord::ColumnSpec>> StagedColumnsLocked(
      const std::string& name) const REQUIRES(mutex_);
  /// The type domain `name` would have after the staged group — fixed by a
  /// staged create-domain, a domain a staged put/append implicitly creates,
  /// or the live catalog — or NotFound if it would not exist.
  Result<rel::ValueType> StagedDomainTypeLocked(const std::string& name) const
      REQUIRES(mutex_);

  std::string directory_;
  Io io_;
  /// kWal: the hierarchy's innermost rank — nothing else is ever acquired
  /// while this is held (the commit path does IO under it instead).
  mutable util::Mutex mutex_{util::LockRank::kWal, "wal"};
  /// Set once by RecoverLocked (Open); the pointer is stable afterwards,
  /// the pointee is mutated only under mutex_ by the commit path.
  std::unique_ptr<rel::Catalog> catalog_ GUARDED_BY(mutex_);
  uint64_t checkpoint_id_ GUARDED_BY(mutex_) = 0;
  size_t wal_live_records_ GUARDED_BY(mutex_) = 0;
  /// True after a failed commit whose torn tail could not be truncated; the
  /// commit path stays closed until a Checkpoint rebuilds the WAL.
  bool wal_poisoned_ GUARDED_BY(mutex_) = false;
  MutationGroup staged_ GUARDED_BY(mutex_);
  /// Groups sealed for the next cross-session batch commit, in seal order.
  std::vector<MutationGroup> sealed_ GUARDED_BY(mutex_);
  std::map<std::string, RecoveredAck> recovered_acks_ GUARDED_BY(mutex_);
  DurabilityStats stats_ GUARDED_BY(mutex_);
};

}  // namespace durability
}  // namespace systolic

#endif  // SYSTOLIC_DURABILITY_DURABLE_CATALOG_H_
