#ifndef SYSTOLIC_RELATIONAL_BUILDER_H_
#define SYSTOLIC_RELATIONAL_BUILDER_H_

#include <initializer_list>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Builds a Relation from human-level Values, encoding each element through
/// its column's Domain (the paper's input boundary, §2.3).
///
/// Usage:
///   RelationBuilder b(schema);
///   b.AddRow({Value::String("alice"), Value::Int64(30)});
///   SYSTOLIC_ASSIGN_OR_RETURN(Relation r, b.Finish());
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema,
                           RelationKind kind = RelationKind::kSet)
      : relation_(std::move(schema), kind) {}

  /// Encodes and appends one row. Fails on arity or type mismatch; earlier
  /// elements of a failing row may still have been registered in their
  /// domains (registration is idempotent and harmless).
  Status AddRow(const std::vector<Value>& row);

  /// Convenience for brace-literal rows.
  Status AddRow(std::initializer_list<Value> row) {
    return AddRow(std::vector<Value>(row));
  }

  /// Returns the built relation and resets the builder to empty.
  Relation Finish();

 private:
  Relation relation_;
};

/// Convenience: builds an all-int64 relation from literal rows. All columns
/// share domains from `schema`. Fails on ragged rows or non-matching arity.
Result<Relation> MakeRelation(const Schema& schema,
                              const std::vector<std::vector<int64_t>>& rows,
                              RelationKind kind = RelationKind::kSet);

/// Convenience: a schema of `arity` int64 columns named c0..c{arity-1}, each
/// over a fresh shared domain named `domain_prefix`+index. Columns of two
/// schemas made by separate calls are NOT union-compatible; to build
/// compatible pairs, reuse one schema or its domains.
Schema MakeIntSchema(size_t arity, const std::string& domain_prefix = "dom");

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_BUILDER_H_
