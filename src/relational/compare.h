#ifndef SYSTOLIC_RELATIONAL_COMPARE_H_
#define SYSTOLIC_RELATIONAL_COMPARE_H_

#include <string>

#include "relational/relation.h"

namespace systolic {
namespace rel {

/// The binary comparison applied between join columns. Equality gives the
/// equi-join; the others give the paper's non-equi-joins (§6.3.2), e.g.
/// kGt is the "greater-than-join".
enum class ComparisonOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// "=", "!=", "<", "<=", ">", ">=".
const char* ComparisonOpToString(ComparisonOp op);

/// Applies `op` to two element codes. Order comparisons are meaningful only
/// on ordered (identity-encoded) domains; callers enforce that.
bool ApplyComparison(ComparisonOp op, Code left, Code right);

/// True iff `op` is kEq or kNe (meaningful on dictionary-encoded domains).
bool IsEqualityOp(ComparisonOp op);

/// Full-tuple equality as defined in §3: element-wise over all columns.
bool TuplesEqual(const Tuple& a, const Tuple& b);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_COMPARE_H_
