#ifndef SYSTOLIC_RELATIONAL_VALUE_H_
#define SYSTOLIC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace systolic {
namespace rel {

/// The dynamic type of a Value / the underlying type of a Domain.
enum class ValueType {
  kInt64,
  kBool,
  kString,
};

/// Returns "int64", "bool" or "string".
const char* ValueTypeToString(ValueType type);

/// A single element of a tuple as seen by humans: an integer, boolean or
/// string. Per the paper (§2.3) these user-level values exist only at the
/// input/output boundary; inside relations and arrays every element is an
/// integer code produced by a Domain.
class Value {
 public:
  /// Constructs the int64 value 0.
  Value() : repr_(int64_t{0}) {}

  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  /// The dynamic type of this value.
  ValueType type() const;

  /// Typed accessors. Preconditions: type() matches.
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  bool AsBool() const { return std::get<bool>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Human-readable rendering ("42", "true", "alice").
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Ordering within one type; values of different types are ordered by type.
  /// Needed so Values can key std::map in Domain dictionaries.
  friend bool operator<(const Value& a, const Value& b) {
    return a.repr_ < b.repr_;
  }

 private:
  using Repr = std::variant<int64_t, bool, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_VALUE_H_
