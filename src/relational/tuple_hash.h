#ifndef SYSTOLIC_RELATIONAL_TUPLE_HASH_H_
#define SYSTOLIC_RELATIONAL_TUPLE_HASH_H_

#include <cstdint>

#include "relational/relation.h"

namespace systolic {
namespace rel {

/// FNV-1a-style hash over a tuple's element codes, for use as the Hash
/// template argument of unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    for (Code code : t) {
      h ^= static_cast<uint64_t>(code);
      h *= 1099511628211ULL;  // FNV prime
      h ^= h >> 32;           // extra mixing: codes are often small ints
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_TUPLE_HASH_H_
