#include "relational/value.h"

namespace systolic {
namespace rel {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return ValueType::kInt64;
    case 1:
      return ValueType::kBool;
    default:
      return ValueType::kString;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kString:
      return AsString();
  }
  return "";
}

}  // namespace rel
}  // namespace systolic
