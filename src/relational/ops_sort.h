#ifndef SYSTOLIC_RELATIONAL_OPS_SORT_H_
#define SYSTOLIC_RELATIONAL_OPS_SORT_H_

#include "relational/op_specs.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {
namespace sortops {

/// Sort-based software implementations — the second conventional baseline
/// (contemporary 1980 database systems were predominantly sort-based).
///
/// Unlike the reference and hash implementations, these emit results in
/// lexicographic tuple-code order, as sorting naturally produces; they agree
/// with the other implementations up to reordering (SetEquals/BagEquals).

/// A ∩ B by sorting both sides and merging. O(n log n).
Result<Relation> Intersection(const Relation& a, const Relation& b);

/// A - B by sorting both sides and merging.
Result<Relation> Difference(const Relation& a, const Relation& b);

/// remove-duplicates(A) by sort + unique.
Result<Relation> RemoveDuplicates(const Relation& a);

/// A ∪ B by sorting the concatenation + unique.
Result<Relation> Union(const Relation& a, const Relation& b);

/// π_f(A) by column-drop, sort + unique.
Result<Relation> Projection(const Relation& a,
                            const std::vector<size_t>& columns);

/// A ⋈ B. Equi-joins use sort-merge on the join-column key; non-equi joins
/// delegate to the reference nested loop.
Result<Relation> Join(const Relation& a, const Relation& b,
                      const JoinSpec& spec);

/// A ÷ B by sorting A on (quotient columns, divisor columns) and scanning
/// groups against the sorted distinct divisor list.
Result<Relation> Division(const Relation& a, const Relation& b,
                          const DivisionSpec& spec);

}  // namespace sortops
}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_OPS_SORT_H_
