#include "relational/domain.h"

namespace systolic {
namespace rel {

std::shared_ptr<Domain> Domain::Make(std::string name, ValueType type) {
  return std::shared_ptr<Domain>(new Domain(std::move(name), type));
}

Result<Code> Domain::Encode(const Value& value) {
  if (value.type() != type_) {
    return Status::InvalidArgument("domain '" + name_ + "' holds " +
                                   ValueTypeToString(type_) + ", got " +
                                   ValueTypeToString(value.type()) + " value '" +
                                   value.ToString() + "'");
  }
  if (type_ == ValueType::kInt64) {
    return value.AsInt64();  // identity encoding
  }
  auto it = by_value_.find(value);
  if (it != by_value_.end()) return it->second;
  const Code code = static_cast<Code>(by_code_.size());
  by_value_.emplace(value, code);
  by_code_.push_back(value);
  return code;
}

Result<Code> Domain::Lookup(const Value& value) const {
  if (value.type() != type_) {
    return Status::InvalidArgument("domain '" + name_ + "' holds " +
                                   ValueTypeToString(type_) + ", got " +
                                   ValueTypeToString(value.type()));
  }
  if (type_ == ValueType::kInt64) return value.AsInt64();
  auto it = by_value_.find(value);
  if (it == by_value_.end()) {
    return Status::NotFound("value '" + value.ToString() +
                            "' is not a member of domain '" + name_ + "'");
  }
  return it->second;
}

Result<Value> Domain::Decode(Code code) const {
  if (type_ == ValueType::kInt64) return Value::Int64(code);
  if (code < 0 || static_cast<size_t>(code) >= by_code_.size()) {
    return Status::NotFound("code " + std::to_string(code) +
                            " was never issued by domain '" + name_ + "'");
  }
  return by_code_[static_cast<size_t>(code)];
}

}  // namespace rel
}  // namespace systolic
