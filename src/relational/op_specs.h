#ifndef SYSTOLIC_RELATIONAL_OP_SPECS_H_
#define SYSTOLIC_RELATIONAL_OP_SPECS_H_

#include <vector>

#include "relational/compare.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Describes a join A ⋈ B over columns C_A and C_B (§6).
///
/// `op` is applied pairwise to each (left, right) column pair; kEq gives the
/// equi-join, the others the non-equi-joins of §6.3.2. For multi-column joins
/// (§6.3.1) the column lists must have equal length and corresponding columns
/// must be drawn from the same underlying domain.
struct JoinSpec {
  std::vector<size_t> left_columns;
  std::vector<size_t> right_columns;
  ComparisonOp op = ComparisonOp::kEq;
};

/// Validates a join spec against the operand schemas: equal column-list
/// lengths, in-range indices, same underlying domains per pair, and ordered
/// domains when `op` is an order comparison.
Status ValidateJoinSpec(const Schema& a, const Schema& b, const JoinSpec& spec);

/// The output schema of the join. For the equi-join the redundant copies of
/// B's join columns are dropped (the paper's |_{CA,CB} operator includes only
/// one of each matching pair, §6.1); for non-equi-joins all columns of both
/// operands are kept, since the matched values differ.
Result<Schema> JoinOutputSchema(const Schema& a, const Schema& b,
                                const JoinSpec& spec);

/// Concatenates a matching pair per the paper's |_{CA,CB} operator. Must be
/// called only for pairs that satisfy the join predicate.
Tuple JoinConcatenate(const Tuple& ta, const Tuple& tb, const JoinSpec& spec);

/// Describes a division A ÷ B over columns C_A of A and C_B of B (§7).
///
/// The quotient's columns are A's columns *not* listed in `a_columns`, in
/// their original order. A quotient tuple x is emitted iff for every tuple y
/// in π_{C_B}(B), the tuple assembling x with y (placed at the `a_columns`
/// positions) appears in A. The paper details the binary÷unary case and notes
/// the general extension is straightforward; we implement the general case.
struct DivisionSpec {
  std::vector<size_t> a_columns;
  std::vector<size_t> b_columns;
};

/// Validates a division spec: non-empty equal-length column lists, in-range
/// indices, shared underlying domains per pair, no duplicate indices, and at
/// least one quotient column remaining in A.
Status ValidateDivisionSpec(const Schema& a, const Schema& b,
                            const DivisionSpec& spec);

/// The quotient schema: A's non-divisor columns in original order.
Result<Schema> DivisionOutputSchema(const Schema& a, const DivisionSpec& spec);

/// Indices of A's quotient (non-divisor) columns, in original order.
std::vector<size_t> DivisionQuotientColumns(const Schema& a,
                                            const DivisionSpec& spec);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_OP_SPECS_H_
