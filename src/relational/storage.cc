#include "relational/storage.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "relational/csv.h"
#include "util/strings.h"

namespace systolic {
namespace rel {

namespace {

namespace fs = std::filesystem;

constexpr char kHexDigits[] = "0123456789ABCDEF";

bool SafeIdentifierChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '-';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

Result<ValueType> ParseValueType(const std::string& token) {
  if (token == "int64") return ValueType::kInt64;
  if (token == "string") return ValueType::kString;
  if (token == "bool") return ValueType::kBool;
  return Status::InvalidArgument("unknown value type '" + token + "'");
}

std::string Lowered(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

}  // namespace

std::string EscapeIdentifier(std::string_view name) {
  std::string escaped;
  escaped.reserve(name.size());
  for (char c : name) {
    if (SafeIdentifierChar(c)) {
      escaped.push_back(c);
    } else {
      const auto byte = static_cast<unsigned char>(c);
      escaped.push_back('%');
      escaped.push_back(kHexDigits[byte >> 4]);
      escaped.push_back(kHexDigits[byte & 0xF]);
    }
  }
  return escaped;
}

Result<std::string> UnescapeIdentifier(std::string_view token) {
  std::string name;
  name.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      name.push_back(token[i]);
      continue;
    }
    const int hi = i + 1 < token.size() ? HexValue(token[i + 1]) : -1;
    const int lo = i + 2 < token.size() ? HexValue(token[i + 2]) : -1;
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed identifier escape in '" +
                                     std::string(token) + "'");
    }
    name.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return name;
}

Result<std::vector<CatalogFile>> SerializeCatalog(const Catalog& catalog) {
  // Collect the distinct Domain objects reachable from stored relations and
  // check name uniqueness.
  std::map<std::string, const Domain*> domains;
  const std::vector<std::string> names = catalog.RelationNames();
  for (const std::string& name : names) {
    if (name.empty()) {
      return Status::InvalidArgument("cannot persist a relation with an "
                                     "empty name");
    }
    SYSTOLIC_ASSIGN_OR_RETURN(const Relation* relation,
                              catalog.GetRelation(name));
    for (const Column& column : relation->schema().columns()) {
      if (column.name.empty() || column.domain->name().empty()) {
        return Status::InvalidArgument(
            "cannot persist relation '" + name +
            "': empty column or domain name");
      }
      auto [it, inserted] =
          domains.emplace(column.domain->name(), column.domain.get());
      if (!inserted && it->second != column.domain.get()) {
        return Status::InvalidArgument(
            "two distinct domains share the name '" + column.domain->name() +
            "'; the manifest cannot distinguish them");
      }
    }
  }

  // Escaping is injective, but data files live on filesystems that may fold
  // case — reject names whose escaped forms collide case-insensitively.
  std::map<std::string, std::string> by_folded_filename;
  for (const std::string& name : names) {
    const std::string filename = EscapeIdentifier(name) + ".csv";
    auto [it, inserted] = by_folded_filename.emplace(Lowered(filename), name);
    if (!inserted) {
      return Status::InvalidArgument(
          "relations '" + it->second + "' and '" + name +
          "' collide on the data file name '" + filename + "'");
    }
  }

  std::vector<CatalogFile> files;
  std::ostringstream manifest;
  manifest << "# systolic-rdb catalog manifest\n";
  for (const auto& [name, domain] : domains) {
    manifest << "domain " << EscapeIdentifier(name) << " "
             << ValueTypeToString(domain->type()) << "\n";
  }
  for (const std::string& name : names) {
    SYSTOLIC_ASSIGN_OR_RETURN(const Relation* relation,
                              catalog.GetRelation(name));
    manifest << "relation " << EscapeIdentifier(name) << " "
             << (relation->kind() == RelationKind::kSet ? "set" : "multi");
    for (const Column& column : relation->schema().columns()) {
      manifest << " " << EscapeIdentifier(column.name) << ":"
               << EscapeIdentifier(column.domain->name());
    }
    manifest << "\n";
  }
  files.push_back(CatalogFile{"MANIFEST", manifest.str()});
  for (const std::string& name : names) {
    SYSTOLIC_ASSIGN_OR_RETURN(const Relation* relation,
                              catalog.GetRelation(name));
    std::ostringstream csv;
    SYSTOLIC_RETURN_NOT_OK(WriteCsv(*relation, csv));
    files.push_back(CatalogFile{EscapeIdentifier(name) + ".csv", csv.str()});
  }
  return files;
}

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  SYSTOLIC_ASSIGN_OR_RETURN(std::vector<CatalogFile> files,
                            SerializeCatalog(catalog));
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + directory +
                           "': " + ec.message());
  }
  for (const CatalogFile& file : files) {
    std::ofstream out(fs::path(directory) / file.name,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open '" + file.name + "' for writing");
    }
    out.write(file.contents.data(),
              static_cast<std::streamsize>(file.contents.size()));
    if (!out) {
      return Status::IOError("short write to '" + file.name + "'");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& directory) {
  std::ifstream manifest(fs::path(directory) / "MANIFEST");
  if (!manifest) {
    return Status::IOError("cannot open '" + directory + "/MANIFEST'");
  }
  auto catalog = std::make_unique<Catalog>();

  std::string line;
  size_t line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    const std::string stripped(Trim(line.substr(0, line.find('#'))));
    if (stripped.empty()) continue;
    std::istringstream in(stripped);
    std::string kind;
    in >> kind;
    if (kind == "domain") {
      std::string name_token, type_token;
      if (!(in >> name_token >> type_token)) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": malformed domain entry");
      }
      SYSTOLIC_ASSIGN_OR_RETURN(std::string name,
                                UnescapeIdentifier(name_token));
      SYSTOLIC_ASSIGN_OR_RETURN(ValueType type, ParseValueType(type_token));
      SYSTOLIC_RETURN_NOT_OK(catalog->CreateDomain(name, type).status());
    } else if (kind == "relation") {
      std::string name_token, kind_token;
      if (!(in >> name_token >> kind_token)) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": malformed relation entry");
      }
      SYSTOLIC_ASSIGN_OR_RETURN(std::string name,
                                UnescapeIdentifier(name_token));
      const RelationKind relation_kind = kind_token == "multi"
                                             ? RelationKind::kMulti
                                             : RelationKind::kSet;
      std::vector<Column> columns;
      std::string column_spec;
      while (in >> column_spec) {
        const std::vector<std::string> parts = Split(column_spec, ':');
        if (parts.size() != 2) {
          return Status::InvalidArgument(
              "manifest line " + std::to_string(line_number) +
              ": malformed column '" + column_spec + "'");
        }
        SYSTOLIC_ASSIGN_OR_RETURN(std::string column_name,
                                  UnescapeIdentifier(parts[0]));
        SYSTOLIC_ASSIGN_OR_RETURN(std::string domain_name,
                                  UnescapeIdentifier(parts[1]));
        SYSTOLIC_ASSIGN_OR_RETURN(auto domain, catalog->GetDomain(domain_name));
        columns.push_back(Column{column_name, domain});
      }
      if (columns.empty()) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": relation without columns");
      }
      std::ifstream csv(fs::path(directory) / (name_token + ".csv"),
                        std::ios::binary);
      if (!csv) {
        return Status::IOError("missing data file '" + name_token + ".csv'");
      }
      SYSTOLIC_ASSIGN_OR_RETURN(
          Relation relation,
          ReadCsv(csv, Schema(std::move(columns)), /*has_header=*/true,
                  relation_kind));
      catalog->PutRelation(name, std::move(relation));
    } else {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_number) +
                                     ": unknown entry '" + kind + "'");
    }
  }
  return catalog;
}

}  // namespace rel
}  // namespace systolic
