#include "relational/storage.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "relational/csv.h"
#include "util/strings.h"

namespace systolic {
namespace rel {

namespace {

namespace fs = std::filesystem;

Result<ValueType> ParseValueType(const std::string& token) {
  if (token == "int64") return ValueType::kInt64;
  if (token == "string") return ValueType::kString;
  if (token == "bool") return ValueType::kBool;
  return Status::InvalidArgument("unknown value type '" + token + "'");
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + directory +
                           "': " + ec.message());
  }

  // Collect the distinct Domain objects reachable from stored relations and
  // check name uniqueness.
  std::map<std::string, const Domain*> domains;
  const std::vector<std::string> names = catalog.RelationNames();
  for (const std::string& name : names) {
    SYSTOLIC_ASSIGN_OR_RETURN(const Relation* relation,
                              catalog.GetRelation(name));
    for (const Column& column : relation->schema().columns()) {
      auto [it, inserted] =
          domains.emplace(column.domain->name(), column.domain.get());
      if (!inserted && it->second != column.domain.get()) {
        return Status::InvalidArgument(
            "two distinct domains share the name '" + column.domain->name() +
            "'; the manifest cannot distinguish them");
      }
    }
  }

  std::ofstream manifest(fs::path(directory) / "MANIFEST");
  if (!manifest) {
    return Status::IOError("cannot open MANIFEST for writing");
  }
  manifest << "# systolic-rdb catalog manifest\n";
  for (const auto& [name, domain] : domains) {
    manifest << "domain " << name << " " << ValueTypeToString(domain->type())
             << "\n";
  }
  for (const std::string& name : names) {
    SYSTOLIC_ASSIGN_OR_RETURN(const Relation* relation,
                              catalog.GetRelation(name));
    manifest << "relation " << name << " "
             << (relation->kind() == RelationKind::kSet ? "set" : "multi");
    for (const Column& column : relation->schema().columns()) {
      manifest << " " << column.name << ":" << column.domain->name();
    }
    manifest << "\n";

    std::ofstream csv(fs::path(directory) / (name + ".csv"));
    if (!csv) {
      return Status::IOError("cannot open '" + name + ".csv' for writing");
    }
    SYSTOLIC_RETURN_NOT_OK(WriteCsv(*relation, csv));
  }
  return Status::OK();
}

Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& directory) {
  std::ifstream manifest(fs::path(directory) / "MANIFEST");
  if (!manifest) {
    return Status::IOError("cannot open '" + directory + "/MANIFEST'");
  }
  auto catalog = std::make_unique<Catalog>();

  std::string line;
  size_t line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    const std::string stripped(Trim(line.substr(0, line.find('#'))));
    if (stripped.empty()) continue;
    std::istringstream in(stripped);
    std::string kind;
    in >> kind;
    if (kind == "domain") {
      std::string name, type_token;
      if (!(in >> name >> type_token)) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": malformed domain entry");
      }
      SYSTOLIC_ASSIGN_OR_RETURN(ValueType type, ParseValueType(type_token));
      SYSTOLIC_RETURN_NOT_OK(catalog->CreateDomain(name, type).status());
    } else if (kind == "relation") {
      std::string name, kind_token;
      if (!(in >> name >> kind_token)) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": malformed relation entry");
      }
      const RelationKind relation_kind = kind_token == "multi"
                                             ? RelationKind::kMulti
                                             : RelationKind::kSet;
      std::vector<Column> columns;
      std::string column_spec;
      while (in >> column_spec) {
        const std::vector<std::string> parts = Split(column_spec, ':');
        if (parts.size() != 2) {
          return Status::InvalidArgument(
              "manifest line " + std::to_string(line_number) +
              ": malformed column '" + column_spec + "'");
        }
        SYSTOLIC_ASSIGN_OR_RETURN(auto domain, catalog->GetDomain(parts[1]));
        columns.push_back(Column{parts[0], domain});
      }
      if (columns.empty()) {
        return Status::InvalidArgument("manifest line " +
                                       std::to_string(line_number) +
                                       ": relation without columns");
      }
      std::ifstream csv(fs::path(directory) / (name + ".csv"));
      if (!csv) {
        return Status::IOError("missing data file '" + name + ".csv'");
      }
      SYSTOLIC_ASSIGN_OR_RETURN(
          Relation relation,
          ReadCsv(csv, Schema(std::move(columns)), /*has_header=*/true,
                  relation_kind));
      catalog->PutRelation(name, std::move(relation));
    } else {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_number) +
                                     ": unknown entry '" + kind + "'");
    }
  }
  return catalog;
}

}  // namespace rel
}  // namespace systolic
