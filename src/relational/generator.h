#ifndef SYSTOLIC_RELATIONAL_GENERATOR_H_
#define SYSTOLIC_RELATIONAL_GENERATOR_H_

#include <cstdint>

#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Parameters for synthetic relation generation.
///
/// The paper's §8 sizing assumes relations of 10^4 tuples of 1500 bits; these
/// generators expose the same knobs (cardinality, arity ≈ bits, domain size)
/// plus selectivity controls the benchmarks sweep over.
struct GeneratorOptions {
  /// Number of tuples to generate.
  size_t num_tuples = 100;
  /// Values per column are drawn from [0, domain_size).
  int64_t domain_size = 1000;
  /// Zipf exponent over the domain; 0 = uniform.
  double zipf_s = 0.0;
  /// PRNG seed; equal options yield equal relations.
  uint64_t seed = 42;
};

/// Generates a relation over `schema` (all-int64 columns) with iid elements.
/// Duplicate tuples may occur; the result is marked as a multi-relation.
Result<Relation> GenerateRelation(const Schema& schema,
                                  const GeneratorOptions& options);

/// Generates a pair (A, B) over the shared `schema` such that approximately
/// `overlap_fraction` of A's tuples also appear (verbatim) somewhere in B.
/// Used by the intersection/difference benchmarks to control selectivity.
struct PairOptions {
  GeneratorOptions base;
  size_t b_num_tuples = 100;
  double overlap_fraction = 0.3;
};
struct RelationPair {
  Relation a;
  Relation b;
};
Result<RelationPair> GenerateOverlappingPair(const Schema& schema,
                                             const PairOptions& options);

/// Generates a relation where each distinct tuple is repeated ~`dup_factor`
/// times on average (dup_factor >= 1), for remove-duplicates workloads.
Result<Relation> GenerateWithDuplicates(const Schema& schema,
                                        const GeneratorOptions& options,
                                        double dup_factor);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_GENERATOR_H_
