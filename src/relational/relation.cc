#include "relational/relation.h"

#include <algorithm>
#include <set>

namespace systolic {
namespace rel {

Status Relation::Append(Tuple tuple) {
  if (tuple.size() != arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(arity()));
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status Relation::Concatenate(const Relation& other) {
  SYSTOLIC_RETURN_NOT_OK(schema_.CheckUnionCompatible(other.schema_));
  tuples_.insert(tuples_.end(), other.tuples_.begin(), other.tuples_.end());
  return Status::OK();
}

bool Relation::Contains(const Tuple& t) const {
  return std::find(tuples_.begin(), tuples_.end(), t) != tuples_.end();
}

bool Relation::IsDuplicateFree() const {
  std::set<Tuple> seen;
  for (const Tuple& t : tuples_) {
    if (!seen.insert(t).second) return false;
  }
  return true;
}

Result<Relation> Relation::Filter(const BitVector& selection,
                                  RelationKind kind) const {
  if (selection.size() != tuples_.size()) {
    return Status::InvalidArgument(
        "selection vector size " + std::to_string(selection.size()) +
        " does not match tuple count " + std::to_string(tuples_.size()));
  }
  Relation out(schema_, kind);
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (selection.Get(i)) out.tuples_.push_back(tuples_[i]);
  }
  return out;
}

Result<Relation> Relation::ProjectColumns(
    const std::vector<size_t>& indices) const {
  SYSTOLIC_ASSIGN_OR_RETURN(Schema projected, schema_.Project(indices));
  Relation out(std::move(projected), RelationKind::kMulti);
  for (const Tuple& t : tuples_) {
    Tuple narrow;
    narrow.reserve(indices.size());
    for (size_t index : indices) narrow.push_back(t[index]);
    out.tuples_.push_back(std::move(narrow));
  }
  return out;
}

bool Relation::SetEquals(const Relation& other) const {
  if (!schema_.UnionCompatibleWith(other.schema_)) return false;
  std::set<Tuple> mine(tuples_.begin(), tuples_.end());
  std::set<Tuple> theirs(other.tuples_.begin(), other.tuples_.end());
  return mine == theirs;
}

bool Relation::BagEquals(const Relation& other) const {
  if (!schema_.UnionCompatibleWith(other.schema_)) return false;
  return SortedTuples() == other.SortedTuples();
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted = tuples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + "\n";
  for (const Tuple& t : tuples_) {
    out += "  (";
    for (size_t c = 0; c < t.size(); ++c) {
      if (c != 0) out += ", ";
      auto decoded = schema_.column(c).domain->Decode(t[c]);
      out += decoded.ok() ? decoded.ValueOrDie().ToString()
                          : "#" + std::to_string(t[c]);
    }
    out += ")\n";
  }
  return out;
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(tuple[i]);
  }
  out += ")";
  return out;
}

}  // namespace rel
}  // namespace systolic
