#include "relational/catalog.h"

namespace systolic {
namespace rel {

Result<std::shared_ptr<Domain>> Catalog::CreateDomain(const std::string& name,
                                                      ValueType type) {
  if (domains_.count(name) != 0) {
    return Status::AlreadyExists("domain '" + name + "' already registered");
  }
  auto domain = Domain::Make(name, type);
  domains_.emplace(name, domain);
  return domain;
}

Result<std::shared_ptr<Domain>> Catalog::GetDomain(
    const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    return Status::NotFound("no domain named '" + name + "'");
  }
  return it->second;
}

void Catalog::PutRelation(const std::string& name, Relation relation) {
  relations_.insert_or_assign(name, std::move(relation));
}

Result<const Relation*> Catalog::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return &it->second;
}

Status Catalog::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

}  // namespace rel
}  // namespace systolic
