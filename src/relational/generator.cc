#include "relational/generator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace systolic {
namespace rel {

namespace {

Status CheckIntSchema(const Schema& schema) {
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).domain->type() != ValueType::kInt64) {
      return Status::InvalidArgument(
          "generator requires int64 columns; column " + std::to_string(c) +
          " is " + ValueTypeToString(schema.column(c).domain->type()));
    }
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("generator requires at least one column");
  }
  return Status::OK();
}

Tuple RandomTuple(Rng& rng, size_t arity, const GeneratorOptions& options) {
  Tuple t(arity);
  for (Code& code : t) {
    if (options.zipf_s > 0.0) {
      code = static_cast<Code>(
          rng.Zipf(static_cast<size_t>(options.domain_size), options.zipf_s));
    } else {
      code = rng.Uniform(0, options.domain_size - 1);
    }
  }
  return t;
}

}  // namespace

Result<Relation> GenerateRelation(const Schema& schema,
                                  const GeneratorOptions& options) {
  SYSTOLIC_RETURN_NOT_OK(CheckIntSchema(schema));
  if (options.domain_size < 1) {
    return Status::InvalidArgument("domain_size must be >= 1");
  }
  Rng rng(options.seed);
  Relation out(schema, RelationKind::kMulti);
  for (size_t i = 0; i < options.num_tuples; ++i) {
    SYSTOLIC_RETURN_NOT_OK(
        out.Append(RandomTuple(rng, schema.num_columns(), options)));
  }
  return out;
}

Result<RelationPair> GenerateOverlappingPair(const Schema& schema,
                                             const PairOptions& options) {
  SYSTOLIC_RETURN_NOT_OK(CheckIntSchema(schema));
  if (options.overlap_fraction < 0.0 || options.overlap_fraction > 1.0) {
    return Status::InvalidArgument("overlap_fraction must be in [0,1]");
  }
  Rng rng(options.base.seed);
  Relation a(schema, RelationKind::kMulti);
  Relation b(schema, RelationKind::kMulti);
  // First build B, then draw A tuples either from B (overlap) or fresh.
  for (size_t i = 0; i < options.b_num_tuples; ++i) {
    SYSTOLIC_RETURN_NOT_OK(
        b.Append(RandomTuple(rng, schema.num_columns(), options.base)));
  }
  for (size_t i = 0; i < options.base.num_tuples; ++i) {
    if (!b.empty() && rng.Bernoulli(options.overlap_fraction)) {
      const size_t pick =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(b.num_tuples()) - 1));
      SYSTOLIC_RETURN_NOT_OK(a.Append(b.tuple(pick)));
    } else {
      // Fresh tuples use codes shifted above the shared domain range so they
      // cannot collide with B by accident; this makes overlap_fraction exact
      // in expectation.
      Tuple t = RandomTuple(rng, schema.num_columns(), options.base);
      t[0] += options.base.domain_size;  // disjoint first column
      SYSTOLIC_RETURN_NOT_OK(a.Append(std::move(t)));
    }
  }
  return RelationPair{std::move(a), std::move(b)};
}

Result<Relation> GenerateWithDuplicates(const Schema& schema,
                                        const GeneratorOptions& options,
                                        double dup_factor) {
  SYSTOLIC_RETURN_NOT_OK(CheckIntSchema(schema));
  if (dup_factor < 1.0) {
    return Status::InvalidArgument("dup_factor must be >= 1");
  }
  const size_t distinct = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(options.num_tuples) / dup_factor));
  Rng rng(options.seed);
  std::vector<Tuple> pool;
  pool.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    pool.push_back(RandomTuple(rng, schema.num_columns(), options));
  }
  Relation out(schema, RelationKind::kMulti);
  for (size_t i = 0; i < options.num_tuples; ++i) {
    const size_t pick =
        static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1));
    SYSTOLIC_RETURN_NOT_OK(out.Append(pool[pick]));
  }
  return out;
}

}  // namespace rel
}  // namespace systolic
