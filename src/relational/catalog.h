#ifndef SYSTOLIC_RELATIONAL_CATALOG_H_
#define SYSTOLIC_RELATIONAL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/domain.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// A tiny in-memory catalog: named domains and named relations.
///
/// The catalog is the single owner of Domain objects in an application, so
/// that two relations which should be union-compatible share the same Domain
/// instance (§2.4). Examples and the integrated system (§9) use it as the
/// "memories" side of the machine.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new domain; AlreadyExists if the name is taken.
  Result<std::shared_ptr<Domain>> CreateDomain(const std::string& name,
                                               ValueType type);

  /// Fetches a registered domain by name.
  Result<std::shared_ptr<Domain>> GetDomain(const std::string& name) const;

  /// Stores `relation` under `name`, replacing any previous relation.
  void PutRelation(const std::string& name, Relation relation);

  /// Fetches a stored relation by name.
  Result<const Relation*> GetRelation(const std::string& name) const;

  /// Removes a stored relation; NotFound if absent.
  Status DropRelation(const std::string& name);

  /// Names of all stored relations, sorted.
  std::vector<std::string> RelationNames() const;

 private:
  std::map<std::string, std::shared_ptr<Domain>> domains_;
  std::map<std::string, Relation> relations_;
};

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_CATALOG_H_
