#ifndef SYSTOLIC_RELATIONAL_STORAGE_H_
#define SYSTOLIC_RELATIONAL_STORAGE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relational/catalog.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Directory-backed persistence for a catalog: one CSV per relation plus a
/// MANIFEST text file recording domains and schemas, so that reloading
/// reconstructs the *sharing* of domains (and with it union-compatibility,
/// §2.4) — the property plain CSVs cannot carry.
///
/// Manifest grammar (one entry per line, '#' comments; every identifier is
/// percent-escaped, see EscapeIdentifier):
///   domain <name> <int64|string|bool>
///   relation <name> <set|multi> <column>:<domain> [<column>:<domain> ...]
///
/// Dictionary codes are not persisted: strings re-encode on load in file
/// order, so codes may differ between sessions while equality semantics,
/// schemas and domain sharing are preserved exactly.

/// Deterministic, filesystem-safe encoding of a catalog identifier
/// (relation, domain or column name): lower-case letters, digits, '_' and
/// '-' pass through; every other byte (including upper-case letters, so no
/// two escaped names can collide on a case-insensitive filesystem) becomes
/// %XX with upper-case hex. Injective, and the identity on names that are
/// already safe.
std::string EscapeIdentifier(std::string_view name);

/// Inverse of EscapeIdentifier. Tokens without escapes decode to
/// themselves, so manifests written before escaping keep loading.
Result<std::string> UnescapeIdentifier(std::string_view token);

/// One file of a catalog's directory representation.
struct CatalogFile {
  std::string name;      ///< File name within the directory.
  std::string contents;  ///< Full file contents.
};

/// Serializes `catalog` into its directory representation — the MANIFEST
/// first, then one `<escaped-name>.csv` per relation — without touching the
/// filesystem. Deterministic: logically equal catalogs serialize to
/// identical bytes, which the crash-recovery tests use as a fingerprint.
/// Fails if two distinct Domain objects share a name, if any identifier is
/// empty, or if two relation names collide case-insensitively after
/// escaping.
Result<std::vector<CatalogFile>> SerializeCatalog(const Catalog& catalog);

/// Writes every relation of `catalog` into `directory` (created if needed).
Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// Reads a directory written by SaveCatalog into a fresh catalog.
Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& directory);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_STORAGE_H_
