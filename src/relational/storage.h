#ifndef SYSTOLIC_RELATIONAL_STORAGE_H_
#define SYSTOLIC_RELATIONAL_STORAGE_H_

#include <memory>
#include <string>

#include "relational/catalog.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Directory-backed persistence for a catalog: one CSV per relation plus a
/// MANIFEST text file recording domains and schemas, so that reloading
/// reconstructs the *sharing* of domains (and with it union-compatibility,
/// §2.4) — the property plain CSVs cannot carry.
///
/// Manifest grammar (one entry per line, '#' comments):
///   domain <name> <int64|string|bool>
///   relation <name> <set|multi> <column>:<domain> [<column>:<domain> ...]
///
/// Dictionary codes are not persisted: strings re-encode on load in file
/// order, so codes may differ between sessions while equality semantics,
/// schemas and domain sharing are preserved exactly.

/// Writes every relation of `catalog` into `directory` (created if needed).
/// Fails if two distinct Domain objects used by the stored relations share
/// a name (the manifest could not distinguish them on reload).
Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// Reads a directory written by SaveCatalog into a fresh catalog.
Result<std::unique_ptr<Catalog>> LoadCatalog(const std::string& directory);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_STORAGE_H_
