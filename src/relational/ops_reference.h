#ifndef SYSTOLIC_RELATIONAL_OPS_REFERENCE_H_
#define SYSTOLIC_RELATIONAL_OPS_REFERENCE_H_

#include "relational/op_specs.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {
namespace reference {

/// Nested-loop reference implementations of every relational operation in the
/// paper. These are the correctness oracle for the systolic arrays: each is a
/// direct transcription of the operation's definition, with no attempt at
/// efficiency. All operations preserve the input tuple order of their first
/// operand (and of B after A for union), matching the arrays' output order.

/// A ∩ B: tuples of A also present in B (§4.1). Requires union-compatibility.
/// Mirrors the intersection array: if A contains duplicates, each surviving
/// occurrence is kept; pass deduplicated inputs for set semantics.
Result<Relation> Intersection(const Relation& a, const Relation& b);

/// A - B: tuples of A not present in B (§4.3). Requires union-compatibility.
Result<Relation> Difference(const Relation& a, const Relation& b);

/// remove-duplicates(A): keeps the first occurrence of each distinct tuple,
/// in input order (§5).
Result<Relation> RemoveDuplicates(const Relation& a);

/// A ∪ B = remove-duplicates(A + B) (§5). Requires union-compatibility.
Result<Relation> Union(const Relation& a, const Relation& b);

/// π_f(A): drops to the columns in `columns` (in that order), then removes
/// duplicates (§5).
Result<Relation> Projection(const Relation& a,
                            const std::vector<size_t>& columns);

/// A ⋈ B per `spec` (§6): all pairs satisfying the predicate, A-major order,
/// concatenated per the |_{CA,CB} operator.
Result<Relation> Join(const Relation& a, const Relation& b,
                      const JoinSpec& spec);

/// A ÷ B per `spec` (§7). The divisor values are π_{C_B}(B) as a set; an
/// empty divisor yields the projection of A onto the quotient columns
/// (vacuous universal quantification), deduplicated.
Result<Relation> Division(const Relation& a, const Relation& b,
                          const DivisionSpec& spec);

}  // namespace reference
}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_OPS_REFERENCE_H_
