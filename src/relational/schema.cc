#include "relational/schema.h"

namespace systolic {
namespace rel {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in schema " +
                          ToString());
}

bool Schema::UnionCompatibleWith(const Schema& other) const {
  return CheckUnionCompatible(other).ok();
}

Status Schema::CheckUnionCompatible(const Schema& other) const {
  if (num_columns() != other.num_columns()) {
    return Status::Incompatible(
        "column counts differ: " + std::to_string(num_columns()) + " vs " +
        std::to_string(other.num_columns()));
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].domain.get() != other.columns_[i].domain.get()) {
      return Status::Incompatible(
          "column " + std::to_string(i) + " domains differ: '" +
          columns_[i].domain->name() + "' vs '" +
          other.columns_[i].domain->name() + "'");
    }
  }
  return Status::OK();
}

Result<Schema> Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Column> projected;
  projected.reserve(indices.size());
  for (size_t index : indices) {
    if (index >= columns_.size()) {
      return Status::OutOfRange("projection index " + std::to_string(index) +
                                " exceeds column count " +
                                std::to_string(columns_.size()));
    }
    projected.push_back(columns_[index]);
  }
  return Schema(std::move(projected));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ", ";
    out += columns_[i].name + ":" + columns_[i].domain->name();
  }
  out += ")";
  return out;
}

}  // namespace rel
}  // namespace systolic
