#include "relational/compare.h"

namespace systolic {
namespace rel {

const char* ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

bool ApplyComparison(ComparisonOp op, Code left, Code right) {
  switch (op) {
    case ComparisonOp::kEq:
      return left == right;
    case ComparisonOp::kNe:
      return left != right;
    case ComparisonOp::kLt:
      return left < right;
    case ComparisonOp::kLe:
      return left <= right;
    case ComparisonOp::kGt:
      return left > right;
    case ComparisonOp::kGe:
      return left >= right;
  }
  return false;
}

bool IsEqualityOp(ComparisonOp op) {
  return op == ComparisonOp::kEq || op == ComparisonOp::kNe;
}

bool TuplesEqual(const Tuple& a, const Tuple& b) { return a == b; }

}  // namespace rel
}  // namespace systolic
