#include "relational/csv.h"

#include <string>
#include <vector>

#include "relational/builder.h"
#include "util/strings.h"

namespace systolic {
namespace rel {

namespace {

Result<Value> ParseField(std::string_view field, bool quoted, ValueType type) {
  // Quoted fields are verbatim; unquoted fields keep the historical
  // whitespace-trimming behaviour.
  const std::string text(quoted ? std::string(field)
                                : std::string(Trim(field)));
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return Status::InvalidArgument("cannot parse '" + text + "' as int64");
      }
      return Value::Int64(v);
    }
    case ValueType::kBool: {
      if (text == "true") return Value::Bool(true);
      if (text == "false") return Value::Bool(false);
      return Status::InvalidArgument("cannot parse '" + text + "' as bool");
    }
    case ValueType::kString:
      return Value::String(text);
  }
  return Status::Internal("unknown value type");
}

struct CsvField {
  std::string text;
  bool quoted = false;
};

/// Reads one CSV record (which may span physical lines inside quoted
/// fields). Returns false at end of input with nothing read. A record is
/// terminated by '\n' (a preceding '\r' is dropped) or end of input.
Result<bool> ReadRecord(std::istream& in, std::vector<CsvField>* record) {
  record->clear();
  int first = in.peek();
  if (first == std::char_traits<char>::eof()) return false;
  CsvField field;
  bool in_quotes = false;
  bool saw_quote = false;  // current field started with a quote
  char c = 0;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.text.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.text.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.text.empty() && !saw_quote) {
      in_quotes = true;
      saw_quote = true;
      field.quoted = true;
      continue;
    }
    if (c == ',') {
      record->push_back(std::move(field));
      field = CsvField{};
      saw_quote = false;
      continue;
    }
    if (c == '\n') {
      if (!field.text.empty() && field.text.back() == '\r' && !field.quoted) {
        field.text.pop_back();
      }
      record->push_back(std::move(field));
      return true;
    }
    if (saw_quote && !in_quotes) {
      // The CR of a CRLF terminator is not part of a quoted field's value.
      if (c == '\r') continue;
      return Status::InvalidArgument(
          "malformed CSV: text after a closing quote");
    }
    field.text.push_back(c);
  }
  if (in_quotes) {
    return Status::InvalidArgument("malformed CSV: unterminated quoted field");
  }
  record->push_back(std::move(field));
  return true;
}

bool BlankRecord(const std::vector<CsvField>& record) {
  return record.size() == 1 && !record[0].quoted &&
         Trim(record[0].text).empty();
}

}  // namespace

std::string EscapeCsvField(std::string_view field) {
  const bool needs_quotes =
      field.empty() ||
      field.find_first_of(",\"\n\r") != std::string_view::npos ||
      Trim(field).size() != field.size();
  if (!needs_quotes) return std::string(field);
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

Result<Relation> ReadCsv(std::istream& in, const Schema& schema,
                         bool has_header, RelationKind kind) {
  RelationBuilder builder(schema, kind);
  std::vector<CsvField> record;
  size_t record_number = 0;
  while (true) {
    Result<bool> more = ReadRecord(in, &record);
    if (!more.ok()) return more.status();
    if (!*more) break;
    ++record_number;
    if (has_header && record_number == 1) continue;
    if (BlankRecord(record)) continue;
    if (record.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "record " + std::to_string(record_number) + " has " +
          std::to_string(record.size()) + " fields, expected " +
          std::to_string(schema.num_columns()));
    }
    std::vector<Value> row;
    row.reserve(record.size());
    for (size_t c = 0; c < record.size(); ++c) {
      SYSTOLIC_ASSIGN_OR_RETURN(
          Value v, ParseField(record[c].text, record[c].quoted,
                              schema.column(c).domain->type()));
      row.push_back(std::move(v));
    }
    SYSTOLIC_RETURN_NOT_OK(builder.AddRow(row));
  }
  return builder.Finish();
}

Status WriteCsv(const Relation& relation, std::ostream& out) {
  const Schema& schema = relation.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c != 0) out << ',';
    out << EscapeCsvField(schema.column(c).name);
  }
  out << '\n';
  for (const Tuple& t : relation.tuples()) {
    for (size_t c = 0; c < t.size(); ++c) {
      if (c != 0) out << ',';
      SYSTOLIC_ASSIGN_OR_RETURN(Value v, schema.column(c).domain->Decode(t[c]));
      out << EscapeCsvField(v.ToString());
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace rel
}  // namespace systolic
