#include "relational/csv.h"

#include <string>

#include "relational/builder.h"
#include "util/strings.h"

namespace systolic {
namespace rel {

namespace {

Result<Value> ParseField(std::string_view field, ValueType type) {
  const std::string text(Trim(field));
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return Status::InvalidArgument("cannot parse '" + text + "' as int64");
      }
      return Value::Int64(v);
    }
    case ValueType::kBool: {
      if (text == "true") return Value::Bool(true);
      if (text == "false") return Value::Bool(false);
      return Status::InvalidArgument("cannot parse '" + text + "' as bool");
    }
    case ValueType::kString:
      return Value::String(text);
  }
  return Status::Internal("unknown value type");
}

}  // namespace

Result<Relation> ReadCsv(std::istream& in, const Schema& schema,
                         bool has_header, RelationKind kind) {
  RelationBuilder builder(schema, kind);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (has_header && line_number == 1) continue;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.num_columns()));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      SYSTOLIC_ASSIGN_OR_RETURN(
          Value v, ParseField(fields[c], schema.column(c).domain->type()));
      row.push_back(std::move(v));
    }
    SYSTOLIC_RETURN_NOT_OK(builder.AddRow(row));
  }
  return builder.Finish();
}

Status WriteCsv(const Relation& relation, std::ostream& out) {
  const Schema& schema = relation.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c != 0) out << ',';
    out << schema.column(c).name;
  }
  out << '\n';
  for (const Tuple& t : relation.tuples()) {
    for (size_t c = 0; c < t.size(); ++c) {
      if (c != 0) out << ',';
      SYSTOLIC_ASSIGN_OR_RETURN(Value v, schema.column(c).domain->Decode(t[c]));
      out << v.ToString();
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace rel
}  // namespace systolic
