#include "relational/ops_hash.h"

#include <unordered_map>
#include <unordered_set>

#include "relational/ops_reference.h"
#include "relational/tuple_hash.h"

namespace systolic {
namespace rel {
namespace hashops {

namespace {

std::unordered_set<Tuple, TupleHash> BuildSet(const Relation& r) {
  std::unordered_set<Tuple, TupleHash> set;
  set.reserve(r.num_tuples());
  for (const Tuple& t : r.tuples()) set.insert(t);
  return set;
}

Tuple KeyOf(const Tuple& t, const std::vector<size_t>& columns) {
  Tuple key;
  key.reserve(columns.size());
  for (size_t c : columns) key.push_back(t[c]);
  return key;
}

}  // namespace

Result<Relation> Intersection(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  const auto b_set = BuildSet(b);
  Relation out(a.schema(), RelationKind::kSet);
  for (const Tuple& ta : a.tuples()) {
    if (b_set.count(ta) != 0) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  const auto b_set = BuildSet(b);
  Relation out(a.schema(), RelationKind::kSet);
  for (const Tuple& ta : a.tuples()) {
    if (b_set.count(ta) == 0) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> RemoveDuplicates(const Relation& a) {
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(a.num_tuples());
  Relation out(a.schema(), RelationKind::kSet);
  for (const Tuple& ta : a.tuples()) {
    if (seen.insert(ta).second) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation concatenated(a.schema(), RelationKind::kMulti);
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(a));
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(b));
  return RemoveDuplicates(concatenated);
}

Result<Relation> Projection(const Relation& a,
                            const std::vector<size_t>& columns) {
  SYSTOLIC_ASSIGN_OR_RETURN(Relation narrowed, a.ProjectColumns(columns));
  return RemoveDuplicates(narrowed);
}

Result<Relation> Join(const Relation& a, const Relation& b,
                      const JoinSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(ValidateJoinSpec(a.schema(), b.schema(), spec));
  if (spec.op != ComparisonOp::kEq) {
    // An order predicate cannot be served by hashing; delegate to the
    // reference nested loop, which has identical semantics.
    return reference::Join(a, b, spec);
  }
  SYSTOLIC_ASSIGN_OR_RETURN(Schema out_schema,
                            JoinOutputSchema(a.schema(), b.schema(), spec));
  // Build on B (keyed by its join columns), probe with A, A-major output
  // order to match the reference implementation.
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> build;
  build.reserve(b.num_tuples());
  for (size_t j = 0; j < b.num_tuples(); ++j) {
    build[KeyOf(b.tuple(j), spec.right_columns)].push_back(j);
  }
  Relation out(std::move(out_schema), RelationKind::kMulti);
  for (const Tuple& ta : a.tuples()) {
    auto it = build.find(KeyOf(ta, spec.left_columns));
    if (it == build.end()) continue;
    for (size_t j : it->second) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(JoinConcatenate(ta, b.tuple(j), spec)));
    }
  }
  return out;
}

Result<Relation> Division(const Relation& a, const Relation& b,
                          const DivisionSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(ValidateDivisionSpec(a.schema(), b.schema(), spec));
  const std::vector<size_t> quotient_columns =
      DivisionQuotientColumns(a.schema(), spec);
  SYSTOLIC_ASSIGN_OR_RETURN(Schema out_schema,
                            DivisionOutputSchema(a.schema(), spec));

  std::unordered_set<Tuple, TupleHash> divisor;
  for (const Tuple& tb : b.tuples()) {
    divisor.insert(KeyOf(tb, spec.b_columns));
  }

  // Group A by quotient value; per group, count distinct covered divisor
  // values. Preserve first-occurrence order of quotient values.
  std::unordered_map<Tuple, std::unordered_set<Tuple, TupleHash>, TupleHash>
      covered_by_group;
  std::vector<Tuple> group_order;
  for (const Tuple& ta : a.tuples()) {
    Tuple x = KeyOf(ta, quotient_columns);
    auto [it, inserted] = covered_by_group.try_emplace(x);
    if (inserted) group_order.push_back(x);
    Tuple y = KeyOf(ta, spec.a_columns);
    if (divisor.count(y) != 0) it->second.insert(std::move(y));
  }

  Relation out(std::move(out_schema), RelationKind::kSet);
  for (const Tuple& x : group_order) {
    if (covered_by_group[x].size() == divisor.size()) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(x));
    }
  }
  return out;
}

}  // namespace hashops
}  // namespace rel
}  // namespace systolic
