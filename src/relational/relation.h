#ifndef SYSTOLIC_RELATIONAL_RELATION_H_
#define SYSTOLIC_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "util/bitvector.h"
#include "util/result.h"
#include "util/status.h"

namespace systolic {
namespace rel {

/// A tuple as stored and pumped through the arrays: a fixed-arity sequence of
/// integer element codes (§2.3).
using Tuple = std::vector<Code>;

/// Whether a relation is a set (a relation proper) or may contain duplicate
/// tuples (a multi-relation, §2.5). Multi-relations arise as intermediate
/// results, e.g. after dropping columns for projection.
enum class RelationKind {
  kSet,
  kMulti,
};

/// A relation: a schema plus a sequence of tuples of element codes.
///
/// Tuples are stored in insertion order. The paper's tuples are unordered
/// within a relation, but remove-duplicates (§5) keeps the *first* of each
/// group of equal tuples, so order is observable and we preserve it.
///
/// kSet declares intent; it is not enforced on insertion (checking would be
/// O(n) per insert). Use IsDuplicateFree() to verify, or the dedup operators
/// to establish it.
class Relation {
 public:
  /// Constructs an empty relation over `schema`.
  explicit Relation(Schema schema, RelationKind kind = RelationKind::kSet)
      : schema_(std::move(schema)), kind_(kind) {}

  const Schema& schema() const { return schema_; }
  RelationKind kind() const { return kind_; }
  size_t num_tuples() const { return tuples_.size(); }
  size_t arity() const { return schema_.num_columns(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(size_t i) const { return tuples_.at(i); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple of codes. Fails with InvalidArgument on arity mismatch.
  Status Append(Tuple tuple);

  /// Appends every tuple of `other`. Fails with Incompatible unless `other`
  /// is union-compatible with this relation (§2.4). This is the paper's
  /// concatenation A+B used to build unions (§5).
  Status Concatenate(const Relation& other);

  /// True iff `t` equals some stored tuple.
  bool Contains(const Tuple& t) const;

  /// True iff no two stored tuples are equal.
  bool IsDuplicateFree() const;

  /// New relation keeping tuple i iff selection.Get(i). The paper's arrays
  /// emit exactly such selection bit vectors (the t_i of §4).
  /// Precondition via Status: selection.size() == num_tuples().
  Result<Relation> Filter(const BitVector& selection,
                          RelationKind kind = RelationKind::kSet) const;

  /// New relation containing, for each tuple, only the columns at `indices`
  /// (in that order). This is the column-dropping half of projection (§5);
  /// the result is a multi-relation until deduplicated.
  Result<Relation> ProjectColumns(const std::vector<size_t>& indices) const;

  /// Set equality: same schema compatibility class and same set of tuples,
  /// ignoring order and multiplicity.
  bool SetEquals(const Relation& other) const;

  /// Bag equality: same tuples with the same multiplicities, ignoring order.
  bool BagEquals(const Relation& other) const;

  /// Tuples sorted lexicographically by code — canonical form for comparison.
  std::vector<Tuple> SortedTuples() const;

  /// Human-readable table with domain-decoded values.
  std::string ToString() const;

 private:
  Schema schema_;
  RelationKind kind_;
  std::vector<Tuple> tuples_;
};

/// Renders one tuple of codes as "(c1, c2, ...)" without decoding.
std::string TupleToString(const Tuple& tuple);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_RELATION_H_
