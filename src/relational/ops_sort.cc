#include "relational/ops_sort.h"

#include <algorithm>

#include "relational/ops_reference.h"

namespace systolic {
namespace rel {
namespace sortops {

namespace {

Tuple KeyOf(const Tuple& t, const std::vector<size_t>& columns) {
  Tuple key;
  key.reserve(columns.size());
  for (size_t c : columns) key.push_back(t[c]);
  return key;
}

// Sorted copies of the operand tuple vectors.
std::vector<Tuple> Sorted(const Relation& r) { return r.SortedTuples(); }

}  // namespace

Result<Relation> Intersection(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  std::vector<Tuple> sa = Sorted(a);
  std::vector<Tuple> sb = Sorted(b);
  Relation out(a.schema(), RelationKind::kSet);
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] < sb[j]) {
      ++i;
    } else if (sb[j] < sa[i]) {
      ++j;
    } else {
      // Emit every duplicate occurrence in A, mirroring the array/reference
      // semantics (one output per surviving A tuple).
      const Tuple& match = sb[j];
      while (i < sa.size() && sa[i] == match) {
        SYSTOLIC_RETURN_NOT_OK(out.Append(sa[i]));
        ++i;
      }
      while (j < sb.size() && sb[j] == match) ++j;
    }
  }
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  std::vector<Tuple> sa = Sorted(a);
  std::vector<Tuple> sb = Sorted(b);
  Relation out(a.schema(), RelationKind::kSet);
  size_t j = 0;
  for (const Tuple& ta : sa) {
    while (j < sb.size() && sb[j] < ta) ++j;
    if (j >= sb.size() || ta < sb[j]) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> RemoveDuplicates(const Relation& a) {
  std::vector<Tuple> sorted = Sorted(a);
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Relation out(a.schema(), RelationKind::kSet);
  for (Tuple& t : sorted) {
    SYSTOLIC_RETURN_NOT_OK(out.Append(std::move(t)));
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation concatenated(a.schema(), RelationKind::kMulti);
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(a));
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(b));
  return RemoveDuplicates(concatenated);
}

Result<Relation> Projection(const Relation& a,
                            const std::vector<size_t>& columns) {
  SYSTOLIC_ASSIGN_OR_RETURN(Relation narrowed, a.ProjectColumns(columns));
  return RemoveDuplicates(narrowed);
}

Result<Relation> Join(const Relation& a, const Relation& b,
                      const JoinSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(ValidateJoinSpec(a.schema(), b.schema(), spec));
  if (spec.op != ComparisonOp::kEq) {
    return reference::Join(a, b, spec);
  }
  SYSTOLIC_ASSIGN_OR_RETURN(Schema out_schema,
                            JoinOutputSchema(a.schema(), b.schema(), spec));

  // Sort (key, row index) pairs for both sides, then merge key groups.
  auto make_keyed = [](const Relation& r, const std::vector<size_t>& columns) {
    std::vector<std::pair<Tuple, size_t>> keyed;
    keyed.reserve(r.num_tuples());
    for (size_t i = 0; i < r.num_tuples(); ++i) {
      keyed.emplace_back(KeyOf(r.tuple(i), columns), i);
    }
    std::sort(keyed.begin(), keyed.end());
    return keyed;
  };
  const auto ka = make_keyed(a, spec.left_columns);
  const auto kb = make_keyed(b, spec.right_columns);

  Relation out(std::move(out_schema), RelationKind::kMulti);
  size_t i = 0;
  size_t j = 0;
  while (i < ka.size() && j < kb.size()) {
    if (ka[i].first < kb[j].first) {
      ++i;
    } else if (kb[j].first < ka[i].first) {
      ++j;
    } else {
      size_t i_end = i;
      while (i_end < ka.size() && ka[i_end].first == ka[i].first) ++i_end;
      size_t j_end = j;
      while (j_end < kb.size() && kb[j_end].first == kb[j].first) ++j_end;
      for (size_t ii = i; ii < i_end; ++ii) {
        for (size_t jj = j; jj < j_end; ++jj) {
          SYSTOLIC_RETURN_NOT_OK(out.Append(JoinConcatenate(
              a.tuple(ka[ii].second), b.tuple(kb[jj].second), spec)));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

Result<Relation> Division(const Relation& a, const Relation& b,
                          const DivisionSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(ValidateDivisionSpec(a.schema(), b.schema(), spec));
  const std::vector<size_t> quotient_columns =
      DivisionQuotientColumns(a.schema(), spec);
  SYSTOLIC_ASSIGN_OR_RETURN(Schema out_schema,
                            DivisionOutputSchema(a.schema(), spec));

  std::vector<Tuple> divisor;
  divisor.reserve(b.num_tuples());
  for (const Tuple& tb : b.tuples()) divisor.push_back(KeyOf(tb, spec.b_columns));
  std::sort(divisor.begin(), divisor.end());
  divisor.erase(std::unique(divisor.begin(), divisor.end()), divisor.end());

  // Sort A as (quotient, divisor-part) pairs and scan group by group.
  std::vector<std::pair<Tuple, Tuple>> rows;
  rows.reserve(a.num_tuples());
  for (const Tuple& ta : a.tuples()) {
    rows.emplace_back(KeyOf(ta, quotient_columns), KeyOf(ta, spec.a_columns));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  Relation out(std::move(out_schema), RelationKind::kSet);
  size_t i = 0;
  while (i < rows.size()) {
    size_t end = i;
    size_t covered = 0;
    while (end < rows.size() && rows[end].first == rows[i].first) {
      if (std::binary_search(divisor.begin(), divisor.end(), rows[end].second)) {
        ++covered;  // rows are deduplicated, so each hit is distinct
      }
      ++end;
    }
    if (covered == divisor.size()) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(rows[i].first));
    }
    i = end;
  }
  return out;
}

}  // namespace sortops
}  // namespace rel
}  // namespace systolic
