#ifndef SYSTOLIC_RELATIONAL_DOMAIN_H_
#define SYSTOLIC_RELATIONAL_DOMAIN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/result.h"
#include "util/status.h"

namespace systolic {
namespace rel {

/// An element code as stored in relations and pumped through the arrays.
using Code = int64_t;

/// An underlying domain in the paper's sense (§2.3): the set of values a
/// column may draw from, together with a unique, reversible encoding of each
/// member into an integer. "These integer encodings are the form in which
/// the elements are stored in the relations, and the list of encodings is
/// stored separately" — Domain is that separately stored list.
///
/// Two encodings are supported:
///  * int64 domains use the identity encoding (code == value), so the integer
///    order of codes equals the value order and θ-joins (<, >, ...) on such
///    columns are meaningful;
///  * bool and string domains use dictionary encoding in first-seen order,
///    which preserves equality only. Order-sensitive operations on such
///    columns are rejected by the engine.
///
/// Domains are shared by reference (shared_ptr); per §2.4 two columns are
/// union-compatible only if they refer to the *same* Domain object.
class Domain {
 public:
  /// Creates an empty domain named `name` over `type`.
  static std::shared_ptr<Domain> Make(std::string name, ValueType type);

  /// Domain name, e.g. "employee-name".
  const std::string& name() const { return name_; }

  /// Underlying value type.
  ValueType type() const { return type_; }

  /// True iff integer order of codes equals value order (identity encoding).
  bool ordered() const { return type_ == ValueType::kInt64; }

  /// Encodes `value`, registering it in the dictionary on first sight.
  /// Fails with InvalidArgument if the value's type does not match type().
  Result<Code> Encode(const Value& value);

  /// Encodes `value` without registering; NotFound if it is not a member.
  Result<Code> Lookup(const Value& value) const;

  /// Decodes a code back to a value; NotFound if the code was never issued.
  Result<Value> Decode(Code code) const;

  /// Number of distinct registered members (0 for identity-encoded domains
  /// until values are encoded; identity domains do not track membership).
  size_t dictionary_size() const { return by_code_.size(); }

 private:
  Domain(std::string name, ValueType type)
      : name_(std::move(name)), type_(type) {}

  std::string name_;
  ValueType type_;
  // Dictionary state; unused (empty) for identity-encoded int64 domains.
  std::map<Value, Code> by_value_;
  std::vector<Value> by_code_;
};

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_DOMAIN_H_
