#include "relational/ops_reference.h"

#include <set>

namespace systolic {
namespace rel {
namespace reference {

Result<Relation> Intersection(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation out(a.schema(), RelationKind::kSet);
  for (const Tuple& ta : a.tuples()) {
    if (b.Contains(ta)) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation out(a.schema(), RelationKind::kSet);
  for (const Tuple& ta : a.tuples()) {
    if (!b.Contains(ta)) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> RemoveDuplicates(const Relation& a) {
  Relation out(a.schema(), RelationKind::kSet);
  std::set<Tuple> seen;
  for (const Tuple& ta : a.tuples()) {
    if (seen.insert(ta).second) {
      SYSTOLIC_RETURN_NOT_OK(out.Append(ta));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  Relation concatenated(a.schema(), RelationKind::kMulti);
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(a));
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(b));
  return RemoveDuplicates(concatenated);
}

Result<Relation> Projection(const Relation& a,
                            const std::vector<size_t>& columns) {
  SYSTOLIC_ASSIGN_OR_RETURN(Relation narrowed, a.ProjectColumns(columns));
  return RemoveDuplicates(narrowed);
}

Result<Relation> Join(const Relation& a, const Relation& b,
                      const JoinSpec& spec) {
  SYSTOLIC_ASSIGN_OR_RETURN(Schema out_schema,
                            JoinOutputSchema(a.schema(), b.schema(), spec));
  Relation out(std::move(out_schema), RelationKind::kMulti);
  for (const Tuple& ta : a.tuples()) {
    for (const Tuple& tb : b.tuples()) {
      bool match = true;
      for (size_t k = 0; k < spec.left_columns.size() && match; ++k) {
        match = ApplyComparison(spec.op, ta[spec.left_columns[k]],
                                tb[spec.right_columns[k]]);
      }
      if (match) {
        SYSTOLIC_RETURN_NOT_OK(out.Append(JoinConcatenate(ta, tb, spec)));
      }
    }
  }
  return out;
}

Result<Relation> Division(const Relation& a, const Relation& b,
                          const DivisionSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(ValidateDivisionSpec(a.schema(), b.schema(), spec));
  const std::vector<size_t> quotient_columns =
      DivisionQuotientColumns(a.schema(), spec);
  SYSTOLIC_ASSIGN_OR_RETURN(Schema out_schema,
                            DivisionOutputSchema(a.schema(), spec));

  // The distinct divisor values: π_{C_B}(B) as a set of sub-tuples.
  std::set<Tuple> divisor;
  for (const Tuple& tb : b.tuples()) {
    Tuple y;
    y.reserve(spec.b_columns.size());
    for (size_t cb : spec.b_columns) y.push_back(tb[cb]);
    divisor.insert(std::move(y));
  }

  // For each candidate quotient value x (distinct values of A's quotient
  // columns, in first-occurrence order), collect the divisor-column values
  // paired with it in A, and keep x iff they cover the whole divisor.
  std::set<Tuple> emitted;
  Relation out(std::move(out_schema), RelationKind::kSet);
  for (const Tuple& ta : a.tuples()) {
    Tuple x;
    x.reserve(quotient_columns.size());
    for (size_t c : quotient_columns) x.push_back(ta[c]);
    if (emitted.count(x) != 0) continue;

    std::set<Tuple> covered;
    for (const Tuple& other : a.tuples()) {
      bool same_quotient = true;
      for (size_t q = 0; q < quotient_columns.size() && same_quotient; ++q) {
        same_quotient = other[quotient_columns[q]] == x[q];
      }
      if (!same_quotient) continue;
      Tuple y;
      y.reserve(spec.a_columns.size());
      for (size_t ca : spec.a_columns) y.push_back(other[ca]);
      if (divisor.count(y) != 0) covered.insert(std::move(y));
    }
    if (covered.size() == divisor.size()) {
      emitted.insert(x);
      SYSTOLIC_RETURN_NOT_OK(out.Append(std::move(x)));
    }
  }
  return out;
}

}  // namespace reference
}  // namespace rel
}  // namespace systolic
