#ifndef SYSTOLIC_RELATIONAL_OPS_HASH_H_
#define SYSTOLIC_RELATIONAL_OPS_HASH_H_

#include "relational/op_specs.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {
namespace hashops {

/// Hash-based software implementations of the relational operations — the
/// strongest conventional-CPU baseline the benchmarks compare the systolic
/// device against (experiment E13). Output order and semantics match the
/// reference implementations exactly.

/// A ∩ B via a hash set over B. O(|A| + |B|) expected.
Result<Relation> Intersection(const Relation& a, const Relation& b);

/// A - B via a hash set over B.
Result<Relation> Difference(const Relation& a, const Relation& b);

/// remove-duplicates(A) via a hash set, keeping first occurrences.
Result<Relation> RemoveDuplicates(const Relation& a);

/// A ∪ B via a hash set over the concatenation.
Result<Relation> Union(const Relation& a, const Relation& b);

/// π_f(A) via column-drop plus hash dedup.
Result<Relation> Projection(const Relation& a,
                            const std::vector<size_t>& columns);

/// A ⋈ B. Equi-joins use a classic build/probe hash join on the join-column
/// key (build side = B); non-equi joins fall back to a nested loop, as a
/// hash table cannot serve an order predicate.
Result<Relation> Join(const Relation& a, const Relation& b,
                      const JoinSpec& spec);

/// A ÷ B by grouping A on the quotient columns and counting the distinct
/// divisor values covered by each group.
Result<Relation> Division(const Relation& a, const Relation& b,
                          const DivisionSpec& spec);

}  // namespace hashops
}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_OPS_HASH_H_
