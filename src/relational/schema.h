#ifndef SYSTOLIC_RELATIONAL_SCHEMA_H_
#define SYSTOLIC_RELATIONAL_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/domain.h"
#include "util/result.h"
#include "util/status.h"

namespace systolic {
namespace rel {

/// One column of a relation: a name plus the shared underlying Domain the
/// column's elements are drawn from (§2.3).
struct Column {
  std::string name;
  std::shared_ptr<Domain> domain;
};

/// An ordered list of columns describing the tuples of one relation.
class Schema {
 public:
  /// Constructs an empty (zero-column) schema.
  Schema() = default;

  /// Constructs from columns; duplicate column names are allowed only after
  /// joins, which disambiguate with relation prefixes.
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_.at(i); }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Union-compatibility per §2.4: same column count and corresponding
  /// columns drawn from the same underlying domain (same Domain object).
  /// Column names are irrelevant.
  bool UnionCompatibleWith(const Schema& other) const;

  /// Returns Incompatible with a diagnostic naming the first mismatch, or OK.
  Status CheckUnionCompatible(const Schema& other) const;

  /// Schema containing the columns at `indices`, in that order. Fails with
  /// OutOfRange if any index exceeds num_columns().
  Result<Schema> Project(const std::vector<size_t>& indices) const;

  /// "name1:domain1, name2:domain2, ...".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_SCHEMA_H_
