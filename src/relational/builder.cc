#include "relational/builder.h"

namespace systolic {
namespace rel {

Status RelationBuilder::AddRow(const std::vector<Value>& row) {
  const Schema& schema = relation_.schema();
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema.ToString());
  }
  Tuple tuple;
  tuple.reserve(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    SYSTOLIC_ASSIGN_OR_RETURN(Code code, schema.column(c).domain->Encode(row[c]));
    tuple.push_back(code);
  }
  return relation_.Append(std::move(tuple));
}

Relation RelationBuilder::Finish() {
  Relation out(relation_.schema(), relation_.kind());
  using std::swap;
  swap(out, relation_);
  return out;
}

Result<Relation> MakeRelation(const Schema& schema,
                              const std::vector<std::vector<int64_t>>& rows,
                              RelationKind kind) {
  RelationBuilder builder(schema, kind);
  for (const auto& row : rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (int64_t v : row) values.push_back(Value::Int64(v));
    SYSTOLIC_RETURN_NOT_OK(builder.AddRow(values));
  }
  return builder.Finish();
}

Schema MakeIntSchema(size_t arity, const std::string& domain_prefix) {
  std::vector<Column> columns;
  columns.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    columns.push_back(Column{
        "c" + std::to_string(i),
        Domain::Make(domain_prefix + std::to_string(i), ValueType::kInt64)});
  }
  return Schema(std::move(columns));
}

}  // namespace rel
}  // namespace systolic
