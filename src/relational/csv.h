#ifndef SYSTOLIC_RELATIONAL_CSV_H_
#define SYSTOLIC_RELATIONAL_CSV_H_

#include <istream>
#include <ostream>
#include <string>

#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Reads a relation from simple CSV (no quoting; comma-separated; first line
/// ignored as a header when `has_header`). Each field must encode into the
/// corresponding column's domain: int64 columns require integer literals,
/// string columns accept any text, bool columns accept "true"/"false".
Result<Relation> ReadCsv(std::istream& in, const Schema& schema,
                         bool has_header = true,
                         RelationKind kind = RelationKind::kSet);

/// Writes a relation as CSV with a header of column names, decoding each
/// element through its domain. Fails if any stored code cannot be decoded.
Status WriteCsv(const Relation& relation, std::ostream& out);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_CSV_H_
