#ifndef SYSTOLIC_RELATIONAL_CSV_H_
#define SYSTOLIC_RELATIONAL_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace rel {

/// Reads a relation from CSV (comma-separated; first line ignored as a
/// header when `has_header`). Fields follow RFC-4180 quoting: a field
/// wrapped in double quotes may contain commas, embedded quotes (doubled)
/// and newlines verbatim; unquoted fields are trimmed of surrounding ASCII
/// whitespace. Each field must encode into the corresponding column's
/// domain: int64 columns require integer literals, string columns accept
/// any text, bool columns accept "true"/"false".
Result<Relation> ReadCsv(std::istream& in, const Schema& schema,
                         bool has_header = true,
                         RelationKind kind = RelationKind::kSet);

/// Writes a relation as CSV with a header of column names, decoding each
/// element through its domain. Fields that would not survive an unquoted
/// round trip (embedded comma/quote/newline, surrounding whitespace, empty
/// strings) are quoted per RFC 4180. Fails if any stored code cannot be
/// decoded.
Status WriteCsv(const Relation& relation, std::ostream& out);

/// Quotes `field` for CSV output when needed (see WriteCsv); returns it
/// unchanged when it round-trips bare.
std::string EscapeCsvField(std::string_view field);

}  // namespace rel
}  // namespace systolic

#endif  // SYSTOLIC_RELATIONAL_CSV_H_
