#include "relational/op_specs.h"

#include <algorithm>
#include <set>

namespace systolic {
namespace rel {

Status ValidateJoinSpec(const Schema& a, const Schema& b,
                        const JoinSpec& spec) {
  if (spec.left_columns.empty()) {
    return Status::InvalidArgument("join requires at least one column pair");
  }
  if (spec.left_columns.size() != spec.right_columns.size()) {
    return Status::InvalidArgument(
        "join column lists have different lengths: " +
        std::to_string(spec.left_columns.size()) + " vs " +
        std::to_string(spec.right_columns.size()));
  }
  for (size_t k = 0; k < spec.left_columns.size(); ++k) {
    const size_t ca = spec.left_columns[k];
    const size_t cb = spec.right_columns[k];
    if (ca >= a.num_columns()) {
      return Status::OutOfRange("left join column " + std::to_string(ca) +
                                " exceeds arity " +
                                std::to_string(a.num_columns()));
    }
    if (cb >= b.num_columns()) {
      return Status::OutOfRange("right join column " + std::to_string(cb) +
                                " exceeds arity " +
                                std::to_string(b.num_columns()));
    }
    const auto& da = a.column(ca).domain;
    const auto& db = b.column(cb).domain;
    if (da.get() != db.get()) {
      return Status::Incompatible("join columns " + std::to_string(ca) +
                                  " and " + std::to_string(cb) +
                                  " are drawn from different domains ('" +
                                  da->name() + "' vs '" + db->name() + "')");
    }
    if (!IsEqualityOp(spec.op) && !da->ordered()) {
      return Status::InvalidArgument(
          std::string("comparison '") + ComparisonOpToString(spec.op) +
          "' requires an ordered domain, but '" + da->name() +
          "' is dictionary-encoded");
    }
  }
  return Status::OK();
}

Result<Schema> JoinOutputSchema(const Schema& a, const Schema& b,
                                const JoinSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(ValidateJoinSpec(a, b, spec));
  std::vector<Column> columns = a.columns();
  const bool drop_right_join_columns = spec.op == ComparisonOp::kEq;
  for (size_t cb = 0; cb < b.num_columns(); ++cb) {
    const bool is_join_column =
        std::find(spec.right_columns.begin(), spec.right_columns.end(), cb) !=
        spec.right_columns.end();
    if (drop_right_join_columns && is_join_column) continue;
    columns.push_back(b.column(cb));
  }
  return Schema(std::move(columns));
}

Tuple JoinConcatenate(const Tuple& ta, const Tuple& tb, const JoinSpec& spec) {
  Tuple out = ta;
  const bool drop_right_join_columns = spec.op == ComparisonOp::kEq;
  for (size_t cb = 0; cb < tb.size(); ++cb) {
    const bool is_join_column =
        std::find(spec.right_columns.begin(), spec.right_columns.end(), cb) !=
        spec.right_columns.end();
    if (drop_right_join_columns && is_join_column) continue;
    out.push_back(tb[cb]);
  }
  return out;
}

Status ValidateDivisionSpec(const Schema& a, const Schema& b,
                            const DivisionSpec& spec) {
  if (spec.a_columns.empty()) {
    return Status::InvalidArgument("division requires at least one column pair");
  }
  if (spec.a_columns.size() != spec.b_columns.size()) {
    return Status::InvalidArgument(
        "division column lists have different lengths: " +
        std::to_string(spec.a_columns.size()) + " vs " +
        std::to_string(spec.b_columns.size()));
  }
  std::set<size_t> a_seen;
  std::set<size_t> b_seen;
  for (size_t k = 0; k < spec.a_columns.size(); ++k) {
    const size_t ca = spec.a_columns[k];
    const size_t cb = spec.b_columns[k];
    if (ca >= a.num_columns()) {
      return Status::OutOfRange("dividend column " + std::to_string(ca) +
                                " exceeds arity " +
                                std::to_string(a.num_columns()));
    }
    if (cb >= b.num_columns()) {
      return Status::OutOfRange("divisor column " + std::to_string(cb) +
                                " exceeds arity " +
                                std::to_string(b.num_columns()));
    }
    if (!a_seen.insert(ca).second || !b_seen.insert(cb).second) {
      return Status::InvalidArgument("duplicate column index in division spec");
    }
    const auto& da = a.column(ca).domain;
    const auto& db = b.column(cb).domain;
    if (da.get() != db.get()) {
      return Status::Incompatible(
          "division columns " + std::to_string(ca) + " and " +
          std::to_string(cb) + " are drawn from different domains ('" +
          da->name() + "' vs '" + db->name() + "')");
    }
  }
  if (spec.a_columns.size() >= a.num_columns()) {
    return Status::InvalidArgument(
        "division leaves no quotient columns in the dividend");
  }
  return Status::OK();
}

std::vector<size_t> DivisionQuotientColumns(const Schema& a,
                                            const DivisionSpec& spec) {
  std::vector<size_t> quotient;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (std::find(spec.a_columns.begin(), spec.a_columns.end(), c) ==
        spec.a_columns.end()) {
      quotient.push_back(c);
    }
  }
  return quotient;
}

Result<Schema> DivisionOutputSchema(const Schema& a,
                                    const DivisionSpec& spec) {
  return a.Project(DivisionQuotientColumns(a, spec));
}

}  // namespace rel
}  // namespace systolic
