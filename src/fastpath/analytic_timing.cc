#include "fastpath/analytic_timing.h"

#include <algorithm>

namespace systolic {
namespace fastpath {

using arrays::FeedMode;

size_t EffectiveRows(FeedMode mode, size_t n_a, size_t n_b, size_t rows) {
  if (rows != 0) return rows;
  return mode == FeedMode::kMarching
             ? arrays::ComparisonGrid::RowsForMarching(std::max(n_a, n_b))
             : std::max<size_t>(1, n_b);
}

size_t MembershipCycles(FeedMode mode, size_t n_a, size_t n_b, size_t m,
                        size_t rows) {
  if (n_a == 0) return 0;
  const size_t r = EffectiveRows(mode, n_a, n_b, rows);
  if (mode == FeedMode::kFixedB) {
    return n_a + m + r + 1;
  }
  // A-side finish (accumulated t_{n_a-1} plus quiescence detection) vs
  // B-side drain; with n_b == 0 only the A side contributes.
  const size_t a_side = 2 * n_a;
  const size_t b_side = n_b == 0 ? 0 : 2 * n_b - 1;
  return m + r + std::max(a_side, b_side);
}

size_t JoinCycles(FeedMode mode, size_t n_a, size_t n_b, size_t m,
                  size_t rows) {
  if (n_a == 0 || n_b == 0) return 0;
  const size_t r = EffectiveRows(mode, n_a, n_b, rows);
  if (mode == FeedMode::kFixedB) {
    return n_a + m + r;
  }
  return m + r + std::max(2 * n_a - 1, 2 * n_b - 1);
}

size_t SelectionCycles(size_t n, size_t predicates) {
  if (n == 0 || predicates == 0) return 0;
  return n + predicates + 1;
}

size_t DivisionCycles(size_t num_pairs, size_t p, size_t q, size_t m_feed) {
  if (num_pairs == 0) return 0;
  return std::max(num_pairs + p, m_feed + q + 2) + q + 4;
}

}  // namespace fastpath
}  // namespace systolic
