#include "fastpath/kernels.h"

#include <bit>

namespace systolic {
namespace fastpath {

namespace {

constexpr size_t kWordBits = 64;

/// Initial-t words for row i under the edge rule: all pairs admitted, or
/// only the strict lower triangle j < i (§5). Trailing bits beyond n_b stay
/// zero so whole-word tests never resurrect out-of-range pairs.
std::vector<uint64_t> EdgeWords(arrays::EdgeRule edge_rule, size_t i,
                                size_t n_b) {
  const size_t limit =
      edge_rule == arrays::EdgeRule::kStrictLowerTriangle ? std::min(i, n_b)
                                                          : n_b;
  std::vector<uint64_t> words((n_b + kWordBits - 1) / kWordBits, 0);
  const size_t full = limit / kWordBits;
  for (size_t w = 0; w < full; ++w) words[w] = ~uint64_t{0};
  const size_t rest = limit % kWordBits;
  if (rest != 0) words[full] = (uint64_t{1} << rest) - 1;
  return words;
}

/// Refines one word in place: clears every set bit whose pair fails
/// op(a_value, column[j]). Only surviving bits are visited — cleared pairs
/// (dead pulses) cost nothing.
inline void RefineWord(uint64_t& word, size_t base, rel::Code a_value,
                       const std::vector<rel::Code>& column,
                       rel::ComparisonOp op) {
  for (uint64_t rest = word; rest != 0; rest &= rest - 1) {
    const size_t j = base + static_cast<size_t>(std::countr_zero(rest));
    if (!rel::ApplyComparison(op, a_value, column[j])) {
      word &= ~(uint64_t{1} << (j - base));
    }
  }
}

}  // namespace

std::vector<rel::Code> PackColumn(const rel::Relation& b, size_t column) {
  std::vector<rel::Code> out;
  out.reserve(b.num_tuples());
  for (const rel::Tuple& t : b.tuples()) out.push_back(t[column]);
  return out;
}

std::vector<uint64_t> MatchMaskWords(
    const rel::Tuple& a_i, size_t i, const std::vector<size_t>& a_columns,
    const std::vector<std::vector<rel::Code>>& b_columns_packed,
    const std::vector<rel::ComparisonOp>& ops, arrays::EdgeRule edge_rule,
    size_t n_b) {
  std::vector<uint64_t> words = EdgeWords(edge_rule, i, n_b);
  for (size_t c = 0; c < a_columns.size(); ++c) {
    const rel::Code a_value = a_i[a_columns[c]];
    bool live = false;
    for (size_t w = 0; w < words.size(); ++w) {
      if (words[w] == 0) continue;
      RefineWord(words[w], w * kWordBits, a_value, b_columns_packed[c],
                 ops[c]);
      live = live || words[w] != 0;
    }
    if (!live) break;
  }
  return words;
}

BitVector MembershipBits(const rel::Relation& a, const rel::Relation& b,
                         const std::vector<size_t>& a_columns,
                         const std::vector<size_t>& b_columns,
                         arrays::EdgeRule edge_rule) {
  const size_t n_a = a.num_tuples();
  const size_t n_b = b.num_tuples();
  BitVector bits(n_a, false);
  std::vector<std::vector<rel::Code>> packed;
  packed.reserve(b_columns.size());
  for (size_t c : b_columns) packed.push_back(PackColumn(b, c));
  const std::vector<rel::ComparisonOp> ops(a_columns.size(),
                                           rel::ComparisonOp::kEq);
  for (size_t i = 0; i < n_a; ++i) {
    const std::vector<uint64_t> words =
        MatchMaskWords(a.tuple(i), i, a_columns, packed, ops, edge_rule, n_b);
    for (uint64_t word : words) {
      if (word != 0) {
        bits.Set(i, true);
        break;
      }
    }
  }
  return bits;
}

std::vector<std::pair<size_t, size_t>> JoinMatches(
    const rel::Relation& a, const rel::Relation& b,
    const std::vector<size_t>& left_columns,
    const std::vector<size_t>& right_columns, rel::ComparisonOp op) {
  std::vector<std::pair<size_t, size_t>> matches;
  const size_t n_b = b.num_tuples();
  std::vector<std::vector<rel::Code>> packed;
  packed.reserve(right_columns.size());
  for (size_t c : right_columns) packed.push_back(PackColumn(b, c));
  const std::vector<rel::ComparisonOp> ops(left_columns.size(), op);
  for (size_t i = 0; i < a.num_tuples(); ++i) {
    const std::vector<uint64_t> words =
        MatchMaskWords(a.tuple(i), i, left_columns, packed, ops,
                       arrays::EdgeRule::kAllTrue, n_b);
    for (size_t w = 0; w < words.size(); ++w) {
      for (uint64_t rest = words[w]; rest != 0; rest &= rest - 1) {
        matches.emplace_back(
            i, w * kWordBits + static_cast<size_t>(std::countr_zero(rest)));
      }
    }
  }
  return matches;
}

BitVector SelectionBits(const rel::Relation& a,
                        const std::vector<size_t>& columns,
                        const std::vector<rel::ComparisonOp>& ops,
                        const std::vector<rel::Code>& constants) {
  const size_t n = a.num_tuples();
  // Here the packed dimension is the tuple index i: one mask over all of A,
  // refined predicate by predicate.
  std::vector<uint64_t> words((n + kWordBits - 1) / kWordBits, 0);
  const size_t full = n / kWordBits;
  for (size_t w = 0; w < full; ++w) words[w] = ~uint64_t{0};
  if (n % kWordBits != 0) words[full] = (uint64_t{1} << (n % kWordBits)) - 1;
  for (size_t p = 0; p < columns.size(); ++p) {
    const std::vector<rel::Code> column = PackColumn(a, columns[p]);
    bool live = false;
    for (size_t w = 0; w < words.size(); ++w) {
      if (words[w] == 0) continue;
      // The selection cell compares tuple element (left) to its preloaded
      // constant (right).
      for (uint64_t rest = words[w]; rest != 0; rest &= rest - 1) {
        const size_t i =
            w * kWordBits + static_cast<size_t>(std::countr_zero(rest));
        if (!rel::ApplyComparison(ops[p], column[i], constants[p])) {
          words[w] &= ~(uint64_t{1} << (i - w * kWordBits));
        }
      }
      live = live || words[w] != 0;
    }
    if (!live) break;
  }
  BitVector bits(n, false);
  for (size_t w = 0; w < words.size(); ++w) {
    for (uint64_t rest = words[w]; rest != 0; rest &= rest - 1) {
      bits.Set(w * kWordBits + static_cast<size_t>(std::countr_zero(rest)),
               true);
    }
  }
  return bits;
}

}  // namespace fastpath
}  // namespace systolic
