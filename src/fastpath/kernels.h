#ifndef SYSTOLIC_FASTPATH_KERNELS_H_
#define SYSTOLIC_FASTPATH_KERNELS_H_

#include <cstdint>
#include <vector>

#include "arrays/edge_rule.h"
#include "relational/compare.h"
#include "relational/relation.h"
#include "util/bitvector.h"

namespace systolic {
namespace fastpath {

/// Packed (SWAR) comparison kernels: the same t matrices the §3/§8 arrays
/// compute pulse by pulse, evaluated 64 tuple pairs per word with dead
/// pulses skipped entirely. Bit j of word j/64 stands for pair (i, b_j); a
/// kernel starts from the edge rule's initial-t mask and refines it one
/// compared column at a time, visiting only the surviving bits of each word
/// (a cleared word is skipped without touching its pairs — the in-software
/// analogue of a quiet region of the grid). Golden tests pin each kernel
/// against the per-pulse RTL cell semantics at word-size boundaries.

/// One operand column pulled out of row-major tuples for word-at-a-time
/// scanning: out[j] = b.tuple(j)[column].
std::vector<rel::Code> PackColumn(const rel::Relation& b, size_t column);

/// The packed match mask of tuple `a_i` against every tuple of B: bit j set
/// iff the edge rule admits pair (i, j) AND op(a_i[a_columns[c]],
/// b_columns_packed[c][j]) holds for every compared column c. `ops` has one
/// entry per compared column (the grid's per-column comparators). Words
/// beyond n_b are zero.
std::vector<uint64_t> MatchMaskWords(
    const rel::Tuple& a_i, size_t i, const std::vector<size_t>& a_columns,
    const std::vector<std::vector<rel::Code>>& b_columns_packed,
    const std::vector<rel::ComparisonOp>& ops, arrays::EdgeRule edge_rule,
    size_t n_b);

/// §4/§5 membership: bit i = OR_j (t_ij^initial AND a_i == b_j) over the
/// fed columns — exactly RunMembership's accumulated result. Stops refining
/// a tuple as soon as a word survives all columns (the OR needs existence
/// only).
BitVector MembershipBits(const rel::Relation& a, const rel::Relation& b,
                         const std::vector<size_t>& a_columns,
                         const std::vector<size_t>& b_columns,
                         arrays::EdgeRule edge_rule);

/// §6 join matches: every (i, j) with AND_c op(a_i[left[c]], b_j[right[c]]),
/// in (i, j)-lexicographic order — the order SystolicJoin's sorted sink
/// harvest produces.
std::vector<std::pair<size_t, size_t>> JoinMatches(
    const rel::Relation& a, const rel::Relation& b,
    const std::vector<size_t>& left_columns,
    const std::vector<size_t>& right_columns, rel::ComparisonOp op);

/// §6.3.2 selection: bit i = AND_p op_p(a_i[col_p], const_p), refined
/// predicate by predicate over word-packed tuple masks. `columns`, `ops`
/// and `constants` are parallel arrays (one entry per predicate).
BitVector SelectionBits(const rel::Relation& a,
                        const std::vector<size_t>& columns,
                        const std::vector<rel::ComparisonOp>& ops,
                        const std::vector<rel::Code>& constants);

}  // namespace fastpath
}  // namespace systolic

#endif  // SYSTOLIC_FASTPATH_KERNELS_H_
