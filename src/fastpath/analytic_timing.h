#ifndef SYSTOLIC_FASTPATH_ANALYTIC_TIMING_H_
#define SYSTOLIC_FASTPATH_ANALYTIC_TIMING_H_

#include <cstddef>

#include "arrays/comparison_grid.h"

namespace systolic {
namespace fastpath {

/// Closed-form pulse counts for the §3/§8 arrays, exact to the cycle.
///
/// The fast path computes *results* with packed bitwise kernels (kernels.h)
/// but reports *timing* from these formulas, which reproduce the RTL
/// simulator's quiescence cycle exactly — not approximately — on every shape
/// the engine can emit. They extend the §3.2/§8 exit-pulse closed forms
/// (pair (i,j) leaves the marching grid at pulse i+j+m+(R-1)/2+1, the
/// fixed-B grid at i+j+m+1; accumulated t_i leaves the column at 2i+m+R+1)
/// to full-run quiescence, which adds the drain of the longer operand and
/// the quiescence-detection step. The contract is pinned by
/// tests/fastpath_kernel_test.cc's analytic-vs-simulated sweeps: any change
/// to the arrays' dataflow must update these forms in the same commit.

/// The grid rows a membership/join pass actually instantiates: `rows` when
/// nonzero, else the §3 auto-size — RowsForMarching(max(n_a, n_b)) for
/// marching, max(1, n_b) for fixed-B.
size_t EffectiveRows(arrays::FeedMode mode, size_t n_a, size_t n_b,
                     size_t rows);

/// Quiescence cycle of one RunMembership pass (grid + accumulation column)
/// over n_a x n_b tuples of width m on an R-row grid:
///   marching: m + R + max(2*n_a, 2*n_b - 1)
///     (A-side: last t_{n_a-1} reaches the sink at 2*n_a + m + R - 1 and
///      quiescence detection adds 1; B-side: the last B word drains off the
///      grid one pulse earlier per tuple, 2*n_b - 1 + m + R.)
///   fixed-B:  n_a + m + R + 1
///     (A streams at unit spacing past the preloaded B; the last t drains
///      the full column regardless of how many rows B fills.)
/// `rows` may be 0 (auto-size). n_a == 0 never runs (0 cycles); n_b may be
/// 0 only in marching mode (the engine skips empty-B tiles entirely).
size_t MembershipCycles(arrays::FeedMode mode, size_t n_a, size_t n_b,
                        size_t m, size_t rows);

/// Quiescence cycle of one SystolicJoin pass (grid + per-row sinks, no
/// accumulation column), m = number of join columns:
///   marching: m + R + max(2*n_a - 1, 2*n_b - 1)
///   fixed-B:  n_a + m + R
/// One pulse less than membership on the critical side: the t words fall
/// straight into the row sinks instead of riding the accumulation column's
/// extra commit.
size_t JoinCycles(arrays::FeedMode mode, size_t n_a, size_t n_b, size_t m,
                  size_t rows);

/// Quiescence cycle of one SystolicSelect pass: a 1-row fixed-B grid with
/// one cell per predicate, so n + predicates + 1. Zero predicates or an
/// empty operand never reach the device (0 cycles).
size_t SelectionCycles(size_t n, size_t predicates);

/// Quiescence cycle of one SystolicDivision run (both phases, cumulative):
///   max(|A| + P, M + Q + 2) + Q + 4
/// where P = distinct quotient values, Q = distinct divisor values, and
/// M = max over feed positions t of (t + x_t) with x_t the first-occurrence
/// rank of pair t's quotient value. Phase 1 quiesces when both chains drain
/// (|A| + P) and the last gated y element — entering row x_t at pulse
/// t + x_t + 2 — crosses its Q divisor cells; phase 2's AND probe adds
/// Q + 4 across every row in parallel. An empty dividend never runs
/// (0 cycles); Q may be 0.
size_t DivisionCycles(size_t num_pairs, size_t p, size_t q, size_t m_feed);

}  // namespace fastpath
}  // namespace systolic

#endif  // SYSTOLIC_FASTPATH_ANALYTIC_TIMING_H_
