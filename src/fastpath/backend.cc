#include "fastpath/backend.h"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_map>
#include <utility>

#include "fastpath/analytic_timing.h"
#include "fastpath/kernels.h"

namespace systolic {
namespace fastpath {

using arrays::FeedMode;
using rel::Relation;

const char* BackendPolicyToString(BackendPolicy policy) {
  switch (policy) {
    case BackendPolicy::kRtl:
      return "rtl";
    case BackendPolicy::kFast:
      return "fast";
    case BackendPolicy::kAuto:
      return "auto";
  }
  return "rtl";
}

const char* BackendToString(Backend backend) {
  return backend == Backend::kFast ? "fast" : "rtl";
}

bool ParseBackendPolicy(const std::string& text, BackendPolicy* policy) {
  if (text == "rtl") {
    *policy = BackendPolicy::kRtl;
  } else if (text == "fast") {
    *policy = BackendPolicy::kFast;
  } else if (text == "auto") {
    *policy = BackendPolicy::kAuto;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Mirrors ComparisonGrid's per-pass capacity limits so the fast path fails
/// with the same Capacity status the RTL grid's feeders would return.
Status CheckGridCapacity(FeedMode mode, size_t n_a, size_t n_b, size_t rows) {
  const size_t max_a = mode == FeedMode::kFixedB ? SIZE_MAX : (rows + 1) / 2;
  const size_t max_b = mode == FeedMode::kFixedB ? rows : (rows + 1) / 2;
  if (n_a > max_a) {
    return Status::Capacity("relation A has " + std::to_string(n_a) +
                            " tuples but the grid fits " +
                            std::to_string(max_a) + " per pass");
  }
  if (n_b > max_b) {
    return Status::Capacity("relation B has " + std::to_string(n_b) +
                            " tuples but the grid fits " +
                            std::to_string(max_b) + " per pass");
  }
  return Status::OK();
}

}  // namespace

Result<BitVector> FastMembership(const Relation& a, const Relation& b,
                                 const std::vector<size_t>& a_columns,
                                 const std::vector<size_t>& b_columns,
                                 arrays::EdgeRule edge_rule,
                                 const arrays::MembershipOptions& options,
                                 arrays::ArrayRunInfo* info) {
  if (a_columns.empty() || a_columns.size() != b_columns.size()) {
    return Status::InvalidArgument(
        "membership query needs equal, non-empty column lists");
  }
  if (a.num_tuples() == 0) {
    return BitVector(0);
  }
  const size_t rows = EffectiveRows(options.mode, a.num_tuples(),
                                    b.num_tuples(), options.rows);
  SYSTOLIC_RETURN_NOT_OK(
      CheckGridCapacity(options.mode, a.num_tuples(), b.num_tuples(), rows));
  if (info != nullptr) {
    info->cycles = MembershipCycles(options.mode, a.num_tuples(),
                                    b.num_tuples(), a_columns.size(),
                                    options.rows);
    info->sim = sim::SimStats{};
  }
  return MembershipBits(a, b, a_columns, b_columns, edge_rule);
}

Result<arrays::JoinArrayResult> FastJoin(const Relation& a, const Relation& b,
                                         const rel::JoinSpec& spec,
                                         const arrays::JoinArrayOptions& options) {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateJoinSpec(a.schema(), b.schema(), spec));
  SYSTOLIC_ASSIGN_OR_RETURN(
      rel::Schema out_schema,
      rel::JoinOutputSchema(a.schema(), b.schema(), spec));
  arrays::JoinArrayResult result(
      Relation(std::move(out_schema), rel::RelationKind::kMulti));
  if (a.num_tuples() == 0 || b.num_tuples() == 0) {
    return result;
  }
  const size_t rows = EffectiveRows(options.mode, a.num_tuples(),
                                    b.num_tuples(), options.rows);
  SYSTOLIC_RETURN_NOT_OK(
      CheckGridCapacity(options.mode, a.num_tuples(), b.num_tuples(), rows));
  result.info.cycles =
      JoinCycles(options.mode, a.num_tuples(), b.num_tuples(),
                 spec.left_columns.size(), options.rows);
  result.matches =
      JoinMatches(a, b, spec.left_columns, spec.right_columns, spec.op);
  for (const auto& [i, j] : result.matches) {
    SYSTOLIC_RETURN_NOT_OK(result.relation.Append(
        rel::JoinConcatenate(a.tuple(i), b.tuple(j), spec)));
  }
  return result;
}

Result<arrays::DivisionArrayResult> FastDivision(const Relation& a,
                                                 const Relation& b,
                                                 const rel::DivisionSpec& spec) {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateDivisionSpec(a.schema(), b.schema(), spec));
  const std::vector<size_t> quotient_columns =
      rel::DivisionQuotientColumns(a.schema(), spec);
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Schema out_schema,
                            rel::DivisionOutputSchema(a.schema(), spec));
  arrays::DivisionArrayResult result(
      Relation(std::move(out_schema), rel::RelationKind::kSet));
  if (a.num_tuples() == 0) {
    return result;
  }

  // The same §2.3 sub-tuple packing the RTL driver performs: fresh codes in
  // first-occurrence order, A's divisor part and B sharing one code space.
  std::map<rel::Tuple, rel::Code> x_codes;
  std::vector<rel::Tuple> x_order;  // distinct quotient values, in A order
  std::map<rel::Tuple, rel::Code> y_codes;
  const auto pack = [](const rel::Tuple& tuple,
                       const std::vector<size_t>& columns,
                       std::map<rel::Tuple, rel::Code>* codes,
                       std::vector<rel::Tuple>* order) {
    rel::Tuple sub;
    sub.reserve(columns.size());
    for (size_t c : columns) sub.push_back(tuple[c]);
    auto [it, inserted] =
        codes->emplace(std::move(sub), static_cast<rel::Code>(codes->size()));
    if (inserted && order != nullptr) order->push_back(it->first);
    return it->second;
  };
  std::vector<std::pair<rel::Code, rel::Code>> pairs;  // (x, y) per A tuple
  pairs.reserve(a.num_tuples());
  for (const rel::Tuple& ta : a.tuples()) {
    const rel::Code x = pack(ta, quotient_columns, &x_codes, &x_order);
    const rel::Code y = pack(ta, spec.a_columns, &y_codes, nullptr);
    pairs.emplace_back(x, y);
  }
  std::vector<rel::Code> divisor;  // distinct divisor values
  {
    std::map<rel::Tuple, rel::Code> seen;
    for (const rel::Tuple& tb : b.tuples()) {
      const rel::Code packed = pack(tb, spec.b_columns, &y_codes, nullptr);
      rel::Tuple sub;
      sub.reserve(spec.b_columns.size());
      for (size_t c : spec.b_columns) sub.push_back(tb[c]);
      if (seen.emplace(std::move(sub), packed).second) divisor.push_back(packed);
    }
  }

  const size_t P = x_order.size();
  const size_t Q = divisor.size();
  result.dividend_rows = P;
  result.divisor_cells = Q;
  // M: latest pulse at which a gated y element enters its dividend row
  // (feed position + row index) — the data-dependent term of the phase-1
  // quiescence cycle.
  size_t m_feed = 0;
  for (size_t t = 0; t < pairs.size(); ++t) {
    m_feed = std::max(m_feed, t + static_cast<size_t>(pairs[t].first));
  }
  result.info.cycles = DivisionCycles(pairs.size(), P, Q, m_feed);

  // Row p's divisor cells raise a match flag per distinct divisor value that
  // some (x = p, y) pair carried past them; the phase-2 AND probe survives
  // iff every flag of the row is up. Flags are one packed word run per row.
  std::unordered_map<rel::Code, size_t> divisor_index;
  divisor_index.reserve(Q);
  for (size_t q = 0; q < Q; ++q) divisor_index.emplace(divisor[q], q);
  constexpr size_t kWordBits = 64;
  const size_t q_words = (Q + kWordBits - 1) / kWordBits;
  std::vector<std::vector<uint64_t>> matched(P,
                                             std::vector<uint64_t>(q_words, 0));
  for (const auto& [x, y] : pairs) {
    const auto it = divisor_index.find(y);
    if (it == divisor_index.end()) continue;  // y not in the divisor: no flag
    matched[static_cast<size_t>(x)][it->second / kWordBits] |=
        uint64_t{1} << (it->second % kWordBits);
  }
  for (size_t p = 0; p < P; ++p) {
    size_t flags = 0;
    for (uint64_t word : matched[p]) {
      flags += static_cast<size_t>(std::popcount(word));
    }
    if (flags == Q) {
      SYSTOLIC_RETURN_NOT_OK(result.relation.Append(x_order[p]));
    }
  }
  return result;
}

Result<arrays::SelectionResult> FastSelect(
    const Relation& a,
    const std::vector<arrays::SelectionPredicate>& predicates) {
  SYSTOLIC_RETURN_NOT_OK(arrays::ValidateSelection(a.schema(), predicates));
  if (predicates.empty()) {
    arrays::SelectionResult all(a);
    all.selected = BitVector(a.num_tuples(), true);
    return all;
  }
  if (a.num_tuples() == 0) {
    arrays::SelectionResult empty(Relation(a.schema(), rel::RelationKind::kSet));
    return empty;
  }
  std::vector<size_t> columns;
  std::vector<rel::ComparisonOp> ops;
  std::vector<rel::Code> constants;
  for (const arrays::SelectionPredicate& p : predicates) {
    columns.push_back(p.column);
    ops.push_back(p.op);
    constants.push_back(p.constant);
  }
  BitVector bits = SelectionBits(a, columns, ops, constants);
  SYSTOLIC_ASSIGN_OR_RETURN(Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  arrays::SelectionResult result(std::move(out));
  result.selected = std::move(bits);
  result.info.cycles = SelectionCycles(a.num_tuples(), predicates.size());
  return result;
}

}  // namespace fastpath
}  // namespace systolic
