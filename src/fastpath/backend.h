#ifndef SYSTOLIC_FASTPATH_BACKEND_H_
#define SYSTOLIC_FASTPATH_BACKEND_H_

#include <string>
#include <vector>

#include "arrays/division_array.h"
#include "arrays/join_array.h"
#include "arrays/membership.h"
#include "arrays/selection_array.h"
#include "relational/op_specs.h"
#include "relational/relation.h"
#include "util/bitvector.h"
#include "util/result.h"

namespace systolic {
namespace fastpath {

/// Which executor a device runs its tile passes on.
enum class Backend {
  /// The cycle-accurate RTL simulator (the repo's correctness oracle).
  kRtl,
  /// The packed-kernel fast path: identical tile results from kernels.h,
  /// cycle counts from analytic_timing.h.
  kFast,
};

/// The user-facing selector: a concrete backend, or kAuto to take the fast
/// path whenever pulse-level fidelity is not required. Either fast policy
/// falls back to the RTL simulator while a fault plan is installed (fault
/// injection corrupts individual pulses, which only the simulator models);
/// golden tracing and the array-level unit surface always drive the RTL
/// arrays directly and are unaffected by the policy.
enum class BackendPolicy {
  kRtl,
  kFast,
  kAuto,
};

/// "rtl" | "fast" | "auto".
const char* BackendPolicyToString(BackendPolicy policy);

/// "rtl" | "fast".
const char* BackendToString(Backend backend);

/// Parses a policy name; false on anything but rtl/fast/auto.
bool ParseBackendPolicy(const std::string& text, BackendPolicy* policy);

/// Drop-in fast replacements for the four array drivers the engine calls
/// per tile. Each returns bit-identical results to its RTL counterpart and
/// reports the analytically derived quiescence cycle count; simulator cell
/// statistics stay zero (no cells were pulsed — ExecStats treats analytic
/// passes separately, see ExecStats::Utilization).

/// Fast RunMembership: same validation, capacity limits, result bits and
/// cycle count as arrays::RunMembership.
Result<BitVector> FastMembership(const rel::Relation& a,
                                 const rel::Relation& b,
                                 const std::vector<size_t>& a_columns,
                                 const std::vector<size_t>& b_columns,
                                 arrays::EdgeRule edge_rule,
                                 const arrays::MembershipOptions& options,
                                 arrays::ArrayRunInfo* info);

/// Fast SystolicJoin: same matches (in (i, j) order), output relation and
/// cycle count as arrays::SystolicJoin.
Result<arrays::JoinArrayResult> FastJoin(const rel::Relation& a,
                                         const rel::Relation& b,
                                         const rel::JoinSpec& spec,
                                         const arrays::JoinArrayOptions& options);

/// Fast SystolicDivision: same quotient (first-occurrence order), shape
/// fields and cycle count as arrays::SystolicDivision.
Result<arrays::DivisionArrayResult> FastDivision(const rel::Relation& a,
                                                 const rel::Relation& b,
                                                 const rel::DivisionSpec& spec);

/// Fast SystolicSelect: same selected bits, output relation and cycle count
/// as arrays::SystolicSelect.
Result<arrays::SelectionResult> FastSelect(
    const rel::Relation& a,
    const std::vector<arrays::SelectionPredicate>& predicates);

}  // namespace fastpath
}  // namespace systolic

#endif  // SYSTOLIC_FASTPATH_BACKEND_H_
