#ifndef SYSTOLIC_UTIL_RESULT_H_
#define SYSTOLIC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace systolic {

/// A value-or-error union, in the Arrow idiom: a Result<T> holds either a T
/// (and an OK status) or a non-OK Status explaining why no value exists.
///
/// Construction from a T or a Status is implicit so that functions can
/// `return value;` or `return Status::InvalidArgument(...);` directly.
///
/// [[nodiscard]]: a dropped Result discards both the value and any error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Access to the contained value. Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `fallback` if errored.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace systolic

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define SYSTOLIC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

#define SYSTOLIC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SYSTOLIC_ASSIGN_OR_RETURN_NAME(a, b) SYSTOLIC_ASSIGN_OR_RETURN_CONCAT(a, b)
#define SYSTOLIC_ASSIGN_OR_RETURN(lhs, expr) \
  SYSTOLIC_ASSIGN_OR_RETURN_IMPL(            \
      SYSTOLIC_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

#endif  // SYSTOLIC_UTIL_RESULT_H_
