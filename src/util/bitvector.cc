#include "util/bitvector.h"

#include <bit>

#include "util/logging.h"

namespace systolic {

BitVector::BitVector(size_t size, bool value)
    : size_(size), words_(WordCount(size), value ? ~uint64_t{0} : 0) {
  ClearTrailingBits();
}

bool BitVector::Get(size_t i) const {
  SYSTOLIC_CHECK_LT(i, size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::Set(size_t i, bool value) {
  SYSTOLIC_CHECK_LT(i, size_);
  const uint64_t mask = uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::PushBack(bool value) {
  Resize(size_ + 1);
  Set(size_ - 1, value);
}

void BitVector::Resize(size_t size) {
  size_ = size;
  words_.resize(WordCount(size), 0);
  ClearTrailingBits();
}

size_t BitVector::CountOnes() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

std::vector<size_t> BitVector::OnesIndices() const {
  std::vector<size_t> indices;
  indices.reserve(CountOnes());
  for (size_t i = 0; i < size_; ++i) {
    if (Get(i)) indices.push_back(i);
  }
  return indices;
}

void BitVector::FlipAll() {
  for (uint64_t& w : words_) w = ~w;
  ClearTrailingBits();
}

void BitVector::OrWith(const BitVector& other) {
  SYSTOLIC_CHECK_EQ(other.size_, size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndWith(const BitVector& other) {
  SYSTOLIC_CHECK_EQ(other.size_, size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

void BitVector::ClearTrailingBits() {
  const size_t used = size_ % kWordBits;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << used) - 1;
  }
}

bool operator==(const BitVector& a, const BitVector& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace systolic
