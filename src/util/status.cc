#include "util/status.h"

namespace systolic {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kIncompatible:
      return "incompatible";
    case StatusCode::kCapacity:
      return "capacity";
    case StatusCode::kDataCorruption:
      return "data-corruption";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kVerifyFailed:
      return "verify-failed";
    case StatusCode::kAborted:
      return "aborted";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyString : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace systolic
