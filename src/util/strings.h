#ifndef SYSTOLIC_UTIL_STRINGS_H_
#define SYSTOLIC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace systolic {

/// Splits `text` on `delimiter`, keeping empty fields. "a,,b" -> {a,"",b}.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True iff `text` parses entirely as a base-10 signed 64-bit integer;
/// on success stores the value in *out.
bool ParseInt64(std::string_view text, int64_t* out);

/// The message for `err` (an errno value), via the thread-safe strerror_r —
/// std::strerror may return a pointer into shared static storage, which the
/// concurrent server paths must not race on (clang-tidy concurrency-*).
std::string ErrnoString(int err);

}  // namespace systolic

#endif  // SYSTOLIC_UTIL_STRINGS_H_
