#ifndef SYSTOLIC_UTIL_RNG_H_
#define SYSTOLIC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace systolic {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// The workload generators must be reproducible across runs and platforms so
/// that experiments in EXPERIMENTS.md can be re-derived exactly; std::mt19937
/// distributions are not portable, so we implement both the generator and the
/// distributions here.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n-1] with exponent `s` (s=0 is uniform).
  /// Rank 0 is the most frequent value. Precondition: n >= 1.
  size_t Zipf(size_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Cached Zipf normalisation: recomputed when (n, s) changes.
  size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace systolic

#endif  // SYSTOLIC_UTIL_RNG_H_
