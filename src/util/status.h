#ifndef SYSTOLIC_UTIL_STATUS_H_
#define SYSTOLIC_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace systolic {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kIncompatible = 8,  // relations are not union-compatible (paper §2.4)
  kCapacity = 9,      // a physical array is too small and tiling is disabled
  kDataCorruption = 10,  // a pass produced data a hardware check rejected
  kUnavailable = 11,     // no chip can run the work (dead / quarantined)
  kVerifyFailed = 12,    // static verification rejected a plan or schedule
  kAborted = 13,  // a commit lost first-committer-wins conflict detection
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...). Never returns null.
const char* StatusCodeToString(StatusCode code);

/// Error-or-success result of an operation, in the Arrow/RocksDB idiom.
///
/// A Status is cheap to pass by value: the OK state carries no allocation,
/// and error states share an immutable heap representation. Public library
/// entry points return Status (or Result<T>) instead of throwing.
///
/// [[nodiscard]]: silently dropping a Status swallows an error; callers must
/// check, propagate, or explicitly void-cast with a comment saying why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status Capacity(std::string msg) {
    return Status(StatusCode::kCapacity, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status VerifyFailed(std::string msg) {
    return Status(StatusCode::kVerifyFailed, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk for a success status.
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  /// The error message; empty for a success status.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsIncompatible() const { return code() == StatusCode::kIncompatible; }
  bool IsCapacity() const { return code() == StatusCode::kCapacity; }
  bool IsDataCorruption() const { return code() == StatusCode::kDataCorruption; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsVerifyFailed() const { return code() == StatusCode::kVerifyFailed; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK; shared so copies are cheap.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace systolic

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is an error.
#define SYSTOLIC_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::systolic::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // SYSTOLIC_UTIL_STATUS_H_
