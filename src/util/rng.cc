#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace systolic {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 per the xoshiro authors' advice, so
  // that near-equal seeds do not yield correlated streams.
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  SYSTOLIC_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

size_t Rng::Zipf(size_t n, double s) {
  SYSTOLIC_CHECK_GE(n, size_t{1});
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (size_t rank = 0; rank < n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
      zipf_cdf_[rank] = total;
    }
    for (double& cum : zipf_cdf_) cum /= total;
  }
  const double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

}  // namespace systolic
