#ifndef SYSTOLIC_UTIL_THREAD_ANNOTATIONS_H_
#define SYSTOLIC_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (DESIGN S27).
///
/// These macros expose clang's `-Wthread-safety` attribute set so the lock
/// discipline of the concurrent core (server sessions, fair scheduler,
/// shared catalog, chip pool, WAL group commit) is PROVABLE at compile time,
/// the same way the S22 verifier proves plan/schedule invariants before
/// execution. On gcc (and any compiler without the attributes) every macro
/// expands to nothing, so the annotated code stays portable; the clang CI
/// lane builds with `-Wthread-safety -Werror` and is blocking.
///
/// Conventions (see DESIGN §2.10):
///  - Every shared field is `GUARDED_BY(mutex_)` the mutex that guards it.
///  - Every private helper that touches guarded state with the lock already
///    held is named `...Locked()` and annotated `REQUIRES(mutex_)`.
///  - Raw `std::mutex` / `std::condition_variable` / `.lock()` / `.unlock()`
///    are forbidden outside `src/util/` (project-lint rule 5); everything
///    goes through the annotated `util::Mutex` / `util::MutexLock` /
///    `util::CondVar` wrappers (mutex.h), whose LockRank encodes the global
///    acquisition order and whose debug checker dies on inversion.
///
/// The macro set mirrors the de-facto standard (abseil / clang docs)
/// spelling so the annotations read like every other annotated codebase.

#if defined(__clang__)
#define SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on gcc
#endif

/// A class that models a capability (a lock). `x` names the capability kind
/// in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// An RAII class that acquires a capability in its constructor and releases
/// it in its destructor (util::MutexLock).
#define SCOPED_CAPABILITY SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define GUARDED_BY(x) SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose POINTEE is protected by the given capability.
#define PT_GUARDED_BY(x) SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares that this capability must be acquired before / after the listed
/// ones. Clang checks these under -Wthread-safety-beta; the always-on
/// enforcement of the ACQUISITION ORDER between *instances* is the runtime
/// LockRank checker in util::Mutex (mutex.h), which dies on inversion in
/// debug builds.
#define ACQUIRED_BEFORE(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The caller must hold the listed capabilities (the `...Locked()` helper
/// annotation).
#define REQUIRES(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define ACQUIRE(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability, which the caller must hold.
#define RELEASE(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability only when it returns true.
#define TRY_ACQUIRE(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock documentation
/// for public entry points that lock internally).
#define EXCLUDES(...) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; tells the
/// static analysis to treat it as held from here on.
#define ASSERT_CAPABILITY(x) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function is deliberately exempt from analysis. Use only
/// with a comment explaining why the invariant holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  SYSTOLIC_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SYSTOLIC_UTIL_THREAD_ANNOTATIONS_H_
