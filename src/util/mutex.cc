#include "util/mutex.h"

#include <vector>

#include "util/logging.h"

namespace systolic {
namespace util {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServer:
      return "server";
    case LockRank::kScheduler:
      return "scheduler";
    case LockRank::kSharedCatalog:
      return "shared-catalog";
    case LockRank::kChipPool:
      return "chip-pool";
    case LockRank::kChipHealth:
      return "chip-health";
    case LockRank::kWal:
      return "wal";
    case LockRank::kLeaf:
      return "leaf";
  }
  return "unknown";
}

// The checker runs in debug builds only: release builds (NDEBUG) compile
// Lock/Unlock down to the raw std::mutex operations, so the annotated
// wrapper stays zero-cost where the E27 overhead gate measures it. The
// static -Wthread-safety proof is build-type independent.
#ifndef NDEBUG
#define SYSTOLIC_LOCK_ORDER_CHECKS 1
#else
#define SYSTOLIC_LOCK_ORDER_CHECKS 0
#endif

bool LockOrderChecksEnabled() { return SYSTOLIC_LOCK_ORDER_CHECKS != 0; }

#if SYSTOLIC_LOCK_ORDER_CHECKS

namespace {

/// The mutexes the calling thread holds, in acquisition order. Thread-local:
/// the checker needs no synchronization of its own and is deterministic —
/// the first acquisition that inverts the hierarchy dies, on every run, no
/// unlucky interleaving required.
std::vector<const Mutex*>& HeldStack() {
  thread_local std::vector<const Mutex*> held;
  return held;
}

/// Dies unless `mu` may be acquired given the thread's held set: every held
/// rank must be strictly below the new one. Equal ranks are inversions too
/// (two same-rank mutexes, or a self-recursive Lock, can form AB/BA cycles
/// the strict order cannot).
void CheckAcquire(const Mutex* mu) {
  for (const Mutex* held : HeldStack()) {
    SYSTOLIC_CHECK(static_cast<int>(held->rank()) <
                   static_cast<int>(mu->rank()))
        << "lock-order inversion: acquiring '" << mu->name() << "' (rank "
        << LockRankName(mu->rank()) << ") while holding '" << held->name()
        << "' (rank " << LockRankName(held->rank())
        << "); the hierarchy (DESIGN 2.10) is server -> scheduler -> "
           "shared-catalog -> chip-pool -> chip-health -> wal -> leaf";
  }
}

void NoteAcquired(const Mutex* mu) { HeldStack().push_back(mu); }

void NoteReleased(const Mutex* mu) {
  std::vector<const Mutex*>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  SYSTOLIC_CHECK(false) << "released mutex '" << mu->name()
                        << "' that the thread does not hold";
}

bool Holds(const Mutex* mu) {
  for (const Mutex* held : HeldStack()) {
    if (held == mu) return true;
  }
  return false;
}

}  // namespace

void Mutex::Lock() {
  // Check BEFORE blocking: an inverted acquisition dies with the inversion
  // named instead of deadlocking in the scheduler's arms.
  CheckAcquire(this);
  mu_.lock();
  NoteAcquired(this);
}

void Mutex::Unlock() {
  NoteReleased(this);
  mu_.unlock();
}

void Mutex::AssertHeld() const {
  SYSTOLIC_CHECK(Holds(this))
      << "AssertHeld: calling thread does not hold '" << name_ << "'";
}

void CondVar::Wait(Mutex* mu) {
  // The wait releases the mutex: drop it from the held set so the set stays
  // truthful while the thread sleeps, and route the re-acquire back through
  // the checker (it cannot fail — the held set is exactly what it was when
  // the original, checked acquisition succeeded).
  NoteReleased(mu);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();  // ownership returns to the caller's MutexLock
  CheckAcquire(mu);
  NoteAcquired(mu);
}

bool CondVar::WaitFor(Mutex* mu, std::chrono::milliseconds timeout) {
  NoteReleased(mu);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(lock, timeout);
  lock.release();
  CheckAcquire(mu);
  NoteAcquired(mu);
  return status == std::cv_status::timeout;
}

#else  // !SYSTOLIC_LOCK_ORDER_CHECKS

void Mutex::Lock() { mu_.lock(); }

void Mutex::Unlock() { mu_.unlock(); }

void Mutex::AssertHeld() const {}

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitFor(Mutex* mu, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(lock, timeout);
  lock.release();
  return status == std::cv_status::timeout;
}

#endif  // SYSTOLIC_LOCK_ORDER_CHECKS

}  // namespace util
}  // namespace systolic
