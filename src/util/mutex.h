#ifndef SYSTOLIC_UTIL_MUTEX_H_
#define SYSTOLIC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace systolic {
namespace util {

/// The global lock hierarchy (DESIGN §2.10). A thread may only acquire a
/// mutex whose rank is STRICTLY GREATER than every mutex it already holds:
/// acquisition order flows top to bottom, so any cycle — the precondition of
/// every deadlock — would need an upward edge and is impossible by
/// construction. The ranks follow the call graph of the concurrent core:
///
///   kServer        Server::mutex_ — session/slot tables, wires, drain flags.
///                  Held while consulting the catalog's recovered acks
///                  (Resume / AttachV2 / MintTokenLocked), so it must come
///                  before kSharedCatalog.
///   kScheduler     FairScheduler::mutex_ — admission slots + RR backlogs.
///   kSharedCatalog SharedCatalog::mutex_ — image publication + commit queue.
///   kChipPool      ChipPool::mutex_ — batch list + worker wakeups.
///   kChipHealth    ChipHealth::mutex_ — strike/quarantine ledger, touched
///                  from tile tasks running on pool workers (pool mutex NOT
///                  held: WorkerLoop drops it around the task).
///   kWal           DurableCatalog::mutex_ — WAL staging/sealing + catalog
///                  application. The group-commit leader calls into it with
///                  no other lock held (ProcessBatch runs outside the
///                  catalog mutex), making it the hierarchy's sink.
///   kLeaf          Never held across another acquisition; for mutexes
///                  outside the core hierarchy (tests, future subsystems).
///
/// In debug builds (`NDEBUG` undefined) every Lock() checks the calling
/// thread's held set against this order and dies — deterministically, at the
/// first inverted acquisition, no unlucky interleaving required — on any
/// violation. Release builds compile the checker out; clang's
/// `-Wthread-safety -Werror` lane statically proves the GUARDED_BY/REQUIRES
/// discipline on every build.
enum class LockRank : int {
  kServer = 100,
  kScheduler = 200,
  kSharedCatalog = 300,
  kChipPool = 400,
  kChipHealth = 500,
  kWal = 600,
  kLeaf = 1000,
};

/// Canonical name for diagnostics ("server", "scheduler", ...).
const char* LockRankName(LockRank rank);

/// True when this build enforces the runtime lock-order checker (debug
/// builds); tests use it to gate the inversion death test.
bool LockOrderChecksEnabled();

/// An annotated, hierarchy-ranked std::mutex (DESIGN S27). The CAPABILITY
/// attribute makes clang's thread-safety analysis track it: fields marked
/// GUARDED_BY(mutex_) are provably touched only under Lock/MutexLock, and
/// `...Locked()` helpers marked REQUIRES(mutex_) are provably called only
/// with it held. The LockRank makes the debug-build checker die on any
/// acquisition that inverts the documented hierarchy.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` is for diagnostics only and must outlive the mutex (string
  /// literals in practice).
  explicit Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();

  /// Dies (debug builds) unless the calling thread holds this mutex; tells
  /// the static analysis it is held from here on. For dynamic call paths the
  /// REQUIRES annotation cannot reach.
  void AssertHeld() const ASSERT_CAPABILITY(this);

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII lock for util::Mutex (SCOPED_CAPABILITY: clang knows the capability
/// is held from construction to destruction). Relockable: Unlock()/Lock()
/// support the drop-the-lock-around-slow-work pattern (group-commit leader,
/// chip-pool workers) without leaving the analysis' sight.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock early (e.g. before slow IO or a blocking write).
  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  /// Re-acquires after an Unlock().
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// Condition variable bound to util::Mutex. Wait() REQUIRES the mutex and
/// keeps the debug checker's held-set bookkeeping consistent across the
/// atomic release/re-acquire inside the wait.
///
/// Spurious-wakeup discipline: Wait() must ALWAYS sit in a predicate loop,
///     while (!predicate) cv_.Wait(&mutex_);
/// keeping the predicate next to the wait where both the reader and clang's
/// analysis (the predicate reads GUARDED_BY state inside the calling
/// function, not an unannotatable lambda) can see it. WaitFor is the timed
/// flavor for periodic loops (the idle reaper); it too belongs under a
/// predicate re-check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks, and re-acquires before returning.
  void Wait(Mutex* mu) REQUIRES(mu);

  /// Timed Wait; returns true when the wait TIMED OUT (the caller's
  /// predicate loop decides what that means).
  bool WaitFor(Mutex* mu, std::chrono::milliseconds timeout) REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace systolic

#endif  // SYSTOLIC_UTIL_MUTEX_H_
