#ifndef SYSTOLIC_UTIL_BITVECTOR_H_
#define SYSTOLIC_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace systolic {

/// A densely packed, dynamically sized vector of bits.
///
/// The operator arrays in this library report which tuples belong to a result
/// as a bit per input tuple (the paper's t_i values, §4); BitVector is the
/// carrier for those selection vectors. Bits beyond size() are always zero.
class BitVector {
 public:
  /// Constructs an empty bit vector.
  BitVector() = default;

  /// Constructs `size` bits, all initialised to `value`.
  explicit BitVector(size_t size, bool value = false);

  /// Number of bits.
  size_t size() const { return size_; }

  /// True iff size() == 0.
  bool empty() const { return size_ == 0; }

  /// Reads bit `i`. Precondition: i < size().
  bool Get(size_t i) const;

  /// Writes bit `i`. Precondition: i < size().
  void Set(size_t i, bool value);

  /// Appends one bit.
  void PushBack(bool value);

  /// Grows or shrinks to `size` bits; new bits are zero.
  void Resize(size_t size);

  /// Number of set bits.
  size_t CountOnes() const;

  /// Indices of all set bits, ascending.
  std::vector<size_t> OnesIndices() const;

  /// Flips every bit in place (used for difference: §4.3's output inverter).
  void FlipAll();

  /// Bitwise OR with `other`. Precondition: other.size() == size().
  void OrWith(const BitVector& other);

  /// Bitwise AND with `other`. Precondition: other.size() == size().
  void AndWith(const BitVector& other);

  /// Renders as a string of '0'/'1', index 0 first.
  std::string ToString() const;

  friend bool operator==(const BitVector& a, const BitVector& b);

 private:
  static constexpr size_t kWordBits = 64;
  static size_t WordCount(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
  /// Zeroes any bits in the last word beyond size_.
  void ClearTrailingBits();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

bool operator==(const BitVector& a, const BitVector& b);
inline bool operator!=(const BitVector& a, const BitVector& b) { return !(a == b); }

}  // namespace systolic

#endif  // SYSTOLIC_UTIL_BITVECTOR_H_
