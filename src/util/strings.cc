#include "util/strings.h"

#include <string.h>

#include <cctype>
#include <charconv>

namespace systolic {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

std::string ErrnoString(int err) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r returns the message (maybe static, maybe buf) and never
  // fails; it only uses static storage for known errnos, which is safe to
  // read concurrently.
  return strerror_r(err, buf, sizeof(buf));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return buf;
#endif
}

}  // namespace systolic
