#ifndef SYSTOLIC_UTIL_LOGGING_H_
#define SYSTOLIC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace systolic {

/// Thrown in place of the fatal abort when a *hardware* invariant trips on a
/// thread that has armed recoverable checks (a fault-injection session,
/// faults::FaultScope). The engine catches it at the tile boundary, converts
/// it to Status::DataCorruption, and retries the tile on another chip.
class HardwareFault : public std::runtime_error {
 public:
  explicit HardwareFault(const std::string& message)
      : std::runtime_error(message) {}
};

namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used only via the SYSTOLIC_CHECK macros; invariant violations inside the
/// simulator are programming errors, not recoverable conditions.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] check failed: "
            << condition << " ";
  }

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Per-thread switch between "abort" and "throw HardwareFault" for the
/// SYSTOLIC_HW_CHECK macros. Off by default: without an active fault session
/// a tripped hardware invariant is a schedule/programming bug and must die
/// exactly like SYSTOLIC_CHECK. Thread-local so one chip's fault session
/// never softens the checks of a concurrently running healthy chip.
inline bool& HardwareChecksArmedFlag() {
  thread_local bool armed = false;
  return armed;
}

/// Arms or disarms recoverable hardware checks on the calling thread and
/// returns the previous setting, so scopes can nest and restore.
inline bool ArmHardwareChecks(bool armed) {
  bool& flag = HardwareChecksArmedFlag();
  const bool previous = flag;
  flag = armed;
  return previous;
}

inline bool HardwareChecksArmed() { return HardwareChecksArmedFlag(); }

/// FatalLogMessage's recoverable sibling, used only via SYSTOLIC_HW_CHECK.
/// Unarmed (the default) it prints and aborts with byte-identical output to
/// FatalLogMessage; armed it throws HardwareFault from the destructor. The
/// throw is safe here: the object is a temporary inside the check macro's
/// `while` statement, so the destructor never runs during another unwind.
class HardwareCheckMessage {
 public:
  HardwareCheckMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] check failed: "
            << condition << " ";
  }

  ~HardwareCheckMessage() noexcept(false) {
    if (HardwareChecksArmed()) throw HardwareFault(stream_.str());
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace systolic

/// Aborts with a message if `condition` is false. Always on, including in
/// release builds: the simulator's correctness claims depend on it.
#define SYSTOLIC_CHECK(condition)                                       \
  while (!(condition))                                                  \
  ::systolic::internal_logging::FatalLogMessage(__FILE__, __LINE__,     \
                                                #condition)             \
      .stream()

#define SYSTOLIC_CHECK_EQ(a, b) SYSTOLIC_CHECK((a) == (b))
#define SYSTOLIC_CHECK_NE(a, b) SYSTOLIC_CHECK((a) != (b))
#define SYSTOLIC_CHECK_LT(a, b) SYSTOLIC_CHECK((a) < (b))
#define SYSTOLIC_CHECK_LE(a, b) SYSTOLIC_CHECK((a) <= (b))
#define SYSTOLIC_CHECK_GT(a, b) SYSTOLIC_CHECK((a) > (b))
#define SYSTOLIC_CHECK_GE(a, b) SYSTOLIC_CHECK((a) >= (b))

/// SYSTOLIC_CHECK for invariants that *faulty hardware* (not just buggy
/// software) can violate: lock-step rendezvous, tag cross-checks, feeder
/// schedules, single-driver wires. Identical abort to SYSTOLIC_CHECK by
/// default; under an armed fault session (faults::FaultScope) it throws
/// HardwareFault so the engine can quarantine the chip and retry the tile.
#define SYSTOLIC_HW_CHECK(condition)                                    \
  while (!(condition))                                                  \
  ::systolic::internal_logging::HardwareCheckMessage(__FILE__, __LINE__, \
                                                     #condition)         \
      .stream()

#define SYSTOLIC_HW_CHECK_EQ(a, b) SYSTOLIC_HW_CHECK((a) == (b))
#define SYSTOLIC_HW_CHECK_GE(a, b) SYSTOLIC_HW_CHECK((a) >= (b))

#endif  // SYSTOLIC_UTIL_LOGGING_H_
