#ifndef SYSTOLIC_UTIL_LOGGING_H_
#define SYSTOLIC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace systolic {
namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used only via the SYSTOLIC_CHECK macros; invariant violations inside the
/// simulator are programming errors, not recoverable conditions.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] check failed: "
            << condition << " ";
  }

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace systolic

/// Aborts with a message if `condition` is false. Always on, including in
/// release builds: the simulator's correctness claims depend on it.
#define SYSTOLIC_CHECK(condition)                                       \
  while (!(condition))                                                  \
  ::systolic::internal_logging::FatalLogMessage(__FILE__, __LINE__,     \
                                                #condition)             \
      .stream()

#define SYSTOLIC_CHECK_EQ(a, b) SYSTOLIC_CHECK((a) == (b))
#define SYSTOLIC_CHECK_NE(a, b) SYSTOLIC_CHECK((a) != (b))
#define SYSTOLIC_CHECK_LT(a, b) SYSTOLIC_CHECK((a) < (b))
#define SYSTOLIC_CHECK_LE(a, b) SYSTOLIC_CHECK((a) <= (b))
#define SYSTOLIC_CHECK_GT(a, b) SYSTOLIC_CHECK((a) > (b))
#define SYSTOLIC_CHECK_GE(a, b) SYSTOLIC_CHECK((a) >= (b))

#endif  // SYSTOLIC_UTIL_LOGGING_H_
