#ifndef SYSTOLIC_SYSTOLIC_SCHEDULE_H_
#define SYSTOLIC_SYSTOLIC_SCHEDULE_H_

#include <vector>

#include "relational/relation.h"
#include "systolic/feeder.h"

namespace systolic {
namespace sim {

/// Which side of the array a relation enters; determines how tuple tags are
/// carried (a_tag for the top relation, b_tag for the bottom one).
enum class FeedSide {
  kTop,
  kBottom,
};

/// Loads the paper's staggered input schedule for `relation` into per-column
/// `feeders` (one feeder per array column, feeders.size() columns).
///
/// Element k of tuple i (restricted to `columns`; columns.size() must equal
/// feeders.size()) is scheduled on column k's feeder at pulse
///     base_cycle + spacing * i + k,
/// realising §3.2's discipline: successive elements of one tuple one step
/// apart (the "slanted" tuples of Fig. 3-1) and successive tuples `spacing`
/// steps apart — 2 when both relations march through each other (so that
/// every pair meets inside a cell), 1 when the other relation is held fixed
/// (§8's full-utilisation variant).
void LoadStaggeredSchedule(const rel::Relation& relation,
                           const std::vector<size_t>& columns,
                           FeedSide side, size_t spacing, size_t base_cycle,
                           const std::vector<StreamFeeder*>& feeders);

/// All column indices of `relation`, 0..arity-1 — the common "feed the whole
/// tuple" case.
std::vector<size_t> AllColumns(const rel::Relation& relation);

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_SCHEDULE_H_
