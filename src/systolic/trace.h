#ifndef SYSTOLIC_SYSTOLIC_TRACE_H_
#define SYSTOLIC_SYSTOLIC_TRACE_H_

#include <string>
#include <vector>

#include "systolic/cell.h"
#include "systolic/wire.h"

namespace systolic {
namespace sim {

/// One observed word on one wire at one pulse.
struct TraceEvent {
  size_t cycle;
  std::string wire;
  Word word;
};

/// A probe cell that records the traffic on a set of wires, for debugging and
/// for the timing tests that verify the hardware schedules (e.g. that t_ij
/// really leaves the right edge at pulse i+j+m+(R-1)/2 as derived in §3.2).
///
/// Register as an infrastructure cell; it never drives any wire.
class TraceProbe : public Cell {
 public:
  TraceProbe(std::string name, std::vector<Wire*> wires, size_t max_events)
      : Cell(std::move(name)), wires_(std::move(wires)), max_events_(max_events) {}

  void Compute(size_t cycle) override {
    for (Wire* wire : wires_) {
      if (wire->HasData() && events_.size() < max_events_) {
        events_.push_back(TraceEvent{cycle, wire->name(), wire->Read()});
      }
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Renders "cycle wire word" lines.
  std::string ToString() const {
    std::string out;
    for (const TraceEvent& e : events_) {
      out += std::to_string(e.cycle) + " " + e.wire + " " + e.word.ToString() +
             "\n";
    }
    return out;
  }

 private:
  std::vector<Wire*> wires_;
  size_t max_events_;
  std::vector<TraceEvent> events_;
};

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_TRACE_H_
