#ifndef SYSTOLIC_SYSTOLIC_SIMULATOR_H_
#define SYSTOLIC_SYSTOLIC_SIMULATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "systolic/cell.h"
#include "systolic/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace systolic {
namespace sim {

/// Aggregate activity statistics for one simulation run.
struct SimStats {
  /// Pulses executed.
  size_t cycles = 0;
  /// Number of cells registered (feeders and sinks excluded).
  size_t num_compute_cells = 0;
  /// Sum over compute cells of busy pulses.
  size_t busy_cell_cycles = 0;

  /// Busy cell-cycles divided by (compute cells × cycles); the quantity the
  /// paper's §8 "only half of the processors are busy" remark is about.
  double Utilization() const {
    const double denom =
        static_cast<double>(num_compute_cells) * static_cast<double>(cycles);
    return denom == 0 ? 0.0 : static_cast<double>(busy_cell_cycles) / denom;
  }
};

/// Owns the cells and wires of one systolic device and drives the global
/// synchronous clock (the paper's "all of the data in the array moves
/// synchronously", §2.1).
///
/// Construction: create wires with NewWire(), cells with AddCell<T>(...),
/// binding cells to wires via their constructors. Then Step() per pulse, or
/// RunUntilQuiescent() to drain a whole operation.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Creates a wire owned by the simulator.
  Wire* NewWire(std::string name) {
    wires_.push_back(std::make_unique<Wire>(std::move(name)));
    return wires_.back().get();
  }

  /// Creates a cell owned by the simulator. `infrastructure` cells (feeders,
  /// sinks) are excluded from utilisation statistics.
  template <typename T, typename... Args>
  T* AddCell(Args&&... args) {
    auto cell = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = cell.get();
    compute_cells_.push_back(raw);
    cells_.push_back(std::move(cell));
    return raw;
  }
  template <typename T, typename... Args>
  T* AddInfrastructureCell(Args&&... args) {
    auto cell = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = cell.get();
    cells_.push_back(std::move(cell));
    return raw;
  }

  /// Executes one pulse: every cell computes from the latched wire state,
  /// then every wire commits. Cell order within a pulse is immaterial by the
  /// two-phase wire discipline.
  void Step();

  /// Pulses executed so far.
  size_t cycle() const { return cycle_; }

  /// Steps until no wire carries data and no cell reports pending work, then
  /// returns the cycle count. Fails with Internal if `max_cycles` elapse
  /// first (a deadlock or runaway-feedback guard).
  Result<size_t> RunUntilQuiescent(size_t max_cycles);

  /// True iff every wire is a bubble and no cell has pending work.
  bool IsQuiescent() const;

  /// Activity statistics over the pulses executed so far.
  SimStats Stats() const;

  /// Per-cell busy-pulse counts (compute cells only, in registration
  /// order), for utilisation heatmaps and activity-profile assertions.
  std::vector<std::pair<std::string, size_t>> PerCellBusy() const;

  size_t num_wires() const { return wires_.size(); }
  size_t num_cells() const { return cells_.size(); }

 private:
  std::vector<std::unique_ptr<Wire>> wires_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<Cell*> compute_cells_;
  size_t cycle_ = 0;
};

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_SIMULATOR_H_
