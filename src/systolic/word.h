#ifndef SYSTOLIC_SYSTOLIC_WORD_H_
#define SYSTOLIC_SYSTOLIC_WORD_H_

#include <cstdint>
#include <string>

#include "relational/domain.h"

namespace systolic {
namespace sim {

/// Identifies which input tuple a word belongs to. kNoTag for untagged words.
using TupleTag = int32_t;
inline constexpr TupleTag kNoTag = -1;

/// One word on a systolic wire during one pulse.
///
/// A word carries either an element code (on the vertical relation channels)
/// or a boolean partial result (on the horizontal t channels; value is 0/1) —
/// the paper stores booleans as integers too (§2.3). `valid == false` is a
/// bubble: the wire carries nothing this pulse.
///
/// The a_tag/b_tag fields carry the originating tuple indices. They are pure
/// metadata: no cell's *computation* reads them (cells compare `value`s and
/// AND/OR flags exactly as the paper's processors do). The simulator uses
/// tags to attribute emitted results to tuples — in hardware this attribution
/// is positional timing, which the timing tests verify independently.
struct Word {
  bool valid = false;
  rel::Code value = 0;
  TupleTag a_tag = kNoTag;
  TupleTag b_tag = kNoTag;

  /// A bubble.
  static Word Bubble() { return Word{}; }

  /// An element word from tuple `tag` of the top-fed (A) relation.
  static Word Element(rel::Code value, TupleTag tag) {
    return Word{true, value, tag, kNoTag};
  }

  /// An element word from tuple `tag` of the bottom-fed (B) relation.
  static Word ElementB(rel::Code value, TupleTag tag) {
    return Word{true, value, kNoTag, tag};
  }

  /// A boolean word attributed to the pair (a_tag, b_tag).
  static Word Boolean(bool flag, TupleTag a_tag, TupleTag b_tag) {
    return Word{true, flag ? 1 : 0, a_tag, b_tag};
  }

  /// The boolean payload of a t-channel word.
  bool AsBool() const { return value != 0; }

  /// Debug rendering, e.g. "[7 a3 b1]" or "·" for a bubble.
  std::string ToString() const;
};

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_WORD_H_
