#ifndef SYSTOLIC_SYSTOLIC_FEEDER_H_
#define SYSTOLIC_SYSTOLIC_FEEDER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "systolic/cell.h"
#include "systolic/wire.h"

namespace systolic {
namespace sim {

/// Injects a pre-computed schedule of words onto one edge wire of an array.
///
/// The schedule maps pulse index → word; pulses with no entry leave the wire
/// as a bubble. This is how the driver realises the paper's input staggering:
/// element a_{i,k} of the top-fed relation is scheduled on column wire k at
/// pulse spacing·i + k (§3.2: elements one step apart, tuples two steps
/// apart when both relations march).
class StreamFeeder : public Cell {
 public:
  StreamFeeder(std::string name, Wire* output)
      : Cell(std::move(name)), output_(output) {}

  /// Schedules `word` for pulse `cycle`. Fatal if the slot is taken or the
  /// pulse has already passed when Compute next runs.
  void ScheduleAt(size_t cycle, const Word& word) {
    SYSTOLIC_HW_CHECK(schedule_.emplace(cycle, word).second)
        << "feeder '" << name() << "' double-books cycle " << cycle;
  }

  void Compute(size_t cycle) override {
    auto first = schedule_.begin();
    if (first == schedule_.end()) return;
    // A slot in the past can never fire and would stall quiescence forever;
    // catching it here turns a silent hang into a diagnosable fault.
    SYSTOLIC_HW_CHECK_GE(first->first, cycle)
        << "feeder '" << name() << "' booked pulse " << first->first
        << " which has already passed (now " << cycle << ")";
    if (first->first != cycle) return;
    output_->Write(first->second);
    schedule_.erase(first);
  }

  bool HasPendingWork() const override { return !schedule_.empty(); }

 private:
  Wire* output_;
  std::map<size_t, Word> schedule_;
};

/// Records every valid word leaving an edge wire, with its arrival pulse.
class SinkCell : public Cell {
 public:
  SinkCell(std::string name, Wire* input)
      : Cell(std::move(name)), input_(input) {}

  void Compute(size_t cycle) override {
    const Word& word = input_->Read();
    if (word.valid) {
      received_.emplace_back(cycle, word);
    }
  }

  /// All (pulse, word) arrivals in order.
  const std::vector<std::pair<size_t, Word>>& received() const {
    return received_;
  }

  void Clear() { received_.clear(); }

 private:
  Wire* input_;
  std::vector<std::pair<size_t, Word>> received_;
};

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_FEEDER_H_
