#include "systolic/schedule.h"

#include "util/logging.h"

namespace systolic {
namespace sim {

void LoadStaggeredSchedule(const rel::Relation& relation,
                           const std::vector<size_t>& columns, FeedSide side,
                           size_t spacing, size_t base_cycle,
                           const std::vector<StreamFeeder*>& feeders) {
  SYSTOLIC_CHECK_EQ(columns.size(), feeders.size());
  SYSTOLIC_CHECK_GE(spacing, size_t{1});
  for (size_t i = 0; i < relation.num_tuples(); ++i) {
    const rel::Tuple& tuple = relation.tuple(i);
    for (size_t k = 0; k < columns.size(); ++k) {
      const rel::Code code = tuple[columns[k]];
      const TupleTag tag = static_cast<TupleTag>(i);
      const Word word = side == FeedSide::kTop ? Word::Element(code, tag)
                                               : Word::ElementB(code, tag);
      feeders[k]->ScheduleAt(base_cycle + spacing * i + k, word);
    }
  }
}

std::vector<size_t> AllColumns(const rel::Relation& relation) {
  std::vector<size_t> columns(relation.arity());
  for (size_t c = 0; c < columns.size(); ++c) columns[c] = c;
  return columns;
}

}  // namespace sim
}  // namespace systolic
