#include "systolic/simulator.h"

#include "systolic/fault_hook.h"

namespace systolic {
namespace sim {

void Simulator::Step() {
  for (auto& cell : cells_) {
    cell->Compute(cycle_);
  }
  for (auto& wire : wires_) {
    wire->Commit();
  }
  if (PulseHook* hook = ThreadPulseHook()) {
    hook->AfterCommit(wires_, cycle_);
  }
  ++cycle_;
}

bool Simulator::IsQuiescent() const {
  for (const auto& cell : cells_) {
    if (cell->HasPendingWork()) return false;
  }
  for (const auto& wire : wires_) {
    if (wire->HasData()) return false;
  }
  return true;
}

Result<size_t> Simulator::RunUntilQuiescent(size_t max_cycles) {
  // Always take at least one step so freshly scheduled feeders fire.
  for (size_t steps = 0; steps < max_cycles; ++steps) {
    Step();
    if (IsQuiescent()) return cycle_;
  }
  return Status::Internal("array did not quiesce within " +
                          std::to_string(max_cycles) + " cycles (cycle=" +
                          std::to_string(cycle_) + ")");
}

std::vector<std::pair<std::string, size_t>> Simulator::PerCellBusy() const {
  std::vector<std::pair<std::string, size_t>> busy;
  busy.reserve(compute_cells_.size());
  for (const Cell* cell : compute_cells_) {
    busy.emplace_back(cell->name(), cell->busy_cycles());
  }
  return busy;
}

SimStats Simulator::Stats() const {
  SimStats stats;
  stats.cycles = cycle_;
  stats.num_compute_cells = compute_cells_.size();
  for (const Cell* cell : compute_cells_) {
    stats.busy_cell_cycles += cell->busy_cycles();
  }
  return stats;
}

}  // namespace sim
}  // namespace systolic
