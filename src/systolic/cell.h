#ifndef SYSTOLIC_SYSTOLIC_CELL_H_
#define SYSTOLIC_SYSTOLIC_CELL_H_

#include <cstddef>
#include <string>

namespace systolic {
namespace sim {

/// Abstract systolic processor (the paper's "cell", §2.2).
///
/// Once per pulse the Simulator calls Compute(): the cell reads its input
/// wires' latched words, performs its short computation, and drives its
/// output wires. Cells must not retain references into wires across pulses
/// other than their fixed port bindings.
///
/// Cells report whether they did useful work each pulse via MarkBusy(); the
/// Simulator aggregates this into the utilisation statistics that reproduce
/// the paper's §8 claim that only half the processors of a marching-input
/// array are busy at once.
class Cell {
 public:
  explicit Cell(std::string name) : name_(std::move(name)) {}
  virtual ~Cell() = default;

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  const std::string& name() const { return name_; }

  /// One pulse of work. `cycle` is the pulse index, for feeders and traces.
  virtual void Compute(size_t cycle) = 0;

  /// True iff the cell still has scheduled input to inject (feeders) or
  /// buffered output to drain. Pure combinational cells return false; the
  /// Simulator uses this plus wire occupancy to detect quiescence.
  virtual bool HasPendingWork() const { return false; }

  /// Number of pulses in which this cell did useful work.
  size_t busy_cycles() const { return busy_cycles_; }

  /// True iff the cell processed at least one valid word in a computational
  /// role this run. Edge/infrastructure cells may never be busy.
  bool ever_busy() const { return busy_cycles_ > 0; }

 protected:
  /// Called by subclasses from Compute() when the pulse did useful work
  /// (consumed at least one valid data word).
  void MarkBusy() { ++busy_cycles_; }

 private:
  std::string name_;
  size_t busy_cycles_ = 0;
};

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_CELL_H_
