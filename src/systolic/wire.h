#ifndef SYSTOLIC_SYSTOLIC_WIRE_H_
#define SYSTOLIC_SYSTOLIC_WIRE_H_

#include <string>

#include "systolic/word.h"
#include "util/logging.h"

namespace systolic {
namespace sim {

/// A unidirectional, single-word wire with an output latch.
///
/// During a pulse, cells Read() the word latched at the end of the previous
/// pulse and Write() the word that will be visible at the next pulse — the
/// two-phase discipline that makes the simulation order-independent: within a
/// pulse it does not matter in which order cells compute. At most one writer
/// may drive a wire per pulse (checked), matching the physical single-driver
/// constraint of the interconnect.
class Wire {
 public:
  explicit Wire(std::string name) : name_(std::move(name)) {}

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  const std::string& name() const { return name_; }

  /// The word latched at the previous pulse boundary.
  const Word& Read() const { return current_; }

  /// Drives the wire for the next pulse. Fatal on a second write in the same
  /// pulse (two cells driving one wire is a design bug — or, under a fault
  /// session, a chip defect; the HW variant lets the engine recover then).
  void Write(const Word& word) {
    SYSTOLIC_HW_CHECK(!written_) << "wire '" << name_
                                 << "' driven twice in one pulse";
    next_ = word;
    written_ = true;
  }

  /// Pulse boundary: the driven word (or a bubble if undriven) becomes
  /// readable. Called only by the Simulator.
  void Commit() {
    current_ = written_ ? next_ : Word::Bubble();
    next_ = Word::Bubble();
    written_ = false;
  }

  /// True iff the latched word is valid data (not a bubble).
  bool HasData() const { return current_.valid; }

  /// Fault-injection override of the latched word: replaces what cells will
  /// Read() on the coming pulse. Called only from a sim::PulseHook, between
  /// Commit() and the next Compute() — modelling corruption on the physical
  /// bus, after the driver and before the receivers.
  void OverrideLatched(const Word& word) { current_ = word; }

 private:
  std::string name_;
  Word current_ = Word::Bubble();
  Word next_ = Word::Bubble();
  bool written_ = false;
};

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_WIRE_H_
