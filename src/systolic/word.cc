#include "systolic/word.h"

namespace systolic {
namespace sim {

std::string Word::ToString() const {
  if (!valid) return "·";
  std::string out = "[" + std::to_string(value);
  if (a_tag != kNoTag) out += " a" + std::to_string(a_tag);
  if (b_tag != kNoTag) out += " b" + std::to_string(b_tag);
  out += "]";
  return out;
}

}  // namespace sim
}  // namespace systolic
