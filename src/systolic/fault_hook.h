#ifndef SYSTOLIC_SYSTOLIC_FAULT_HOOK_H_
#define SYSTOLIC_SYSTOLIC_FAULT_HOOK_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace systolic {
namespace sim {

class Wire;

/// Pulse-boundary observer installed per thread by the fault layer.
///
/// The Simulator calls AfterCommit() once per Step(), after every wire has
/// latched its next word and before any cell reads it — exactly the window in
/// which a physical bus would corrupt a word in transit. The hook may rewrite
/// latched words via Wire::OverrideLatched() to model such faults.
///
/// The hook is thread-local (one simulated chip per thread in the engine's
/// tile scheduler), so a fault session perturbs only its own chip's pulses
/// and concurrent healthy chips are untouched. The simulator layer only
/// *reads* the slot; installation and removal belong to faults::FaultScope.
class PulseHook {
 public:
  virtual ~PulseHook() = default;

  /// `wires` is the simulator's wire set for the pulse that just committed;
  /// `cycle` is the pulse index that was executed.
  virtual void AfterCommit(const std::vector<std::unique_ptr<Wire>>& wires,
                           size_t cycle) = 0;
};

/// The hook active on the calling thread; null (the default) means no fault
/// injection and costs one thread-local load per pulse.
inline PulseHook*& ThreadPulseHook() {
  thread_local PulseHook* hook = nullptr;
  return hook;
}

}  // namespace sim
}  // namespace systolic

#endif  // SYSTOLIC_SYSTOLIC_FAULT_HOOK_H_
