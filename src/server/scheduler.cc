#include "server/scheduler.h"

#include <algorithm>
#include <string>

namespace systolic {
namespace server {

AdmissionTicket::~AdmissionTicket() {
  if (scheduler_ != nullptr) scheduler_->Release();
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (scheduler_ != nullptr) scheduler_->Release();
    scheduler_ = other.scheduler_;
    other.scheduler_ = nullptr;
  }
  return *this;
}

FairScheduler::FairScheduler(size_t max_concurrent, size_t max_queued)
    : max_concurrent_(std::max<size_t>(1, max_concurrent)),
      max_queued_(max_queued) {}

FairScheduler::Waiter* FairScheduler::NextWaiterLocked() {
  if (rr_order_.empty()) return nullptr;
  const uint64_t session = rr_order_.front();
  rr_order_.pop_front();
  auto backlog = backlogs_.find(session);
  Waiter* waiter = backlog->second.front();
  backlog->second.pop_front();
  if (backlog->second.empty()) {
    backlogs_.erase(backlog);
  } else {
    rr_order_.push_back(session);  // round-robin: back of the service order
  }
  --queued_;
  return waiter;
}

Result<AdmissionTicket> FairScheduler::Admit(uint64_t session_id) {
  util::MutexLock lock(&mutex_);
  if (queued_ == 0 && running_ < max_concurrent_) {
    ++running_;
    ++stats_.admitted;
    return AdmissionTicket(this);
  }
  if (queued_ >= max_queued_) {
    ++stats_.rejected;
    return Status::Capacity(
        "admission queue is full (" + std::to_string(queued_) +
        " plans waiting, limit " + std::to_string(max_queued_) +
        "); retry when the device pool drains");
  }
  Waiter waiter;
  waiter.session_id = session_id;
  auto& backlog = backlogs_[session_id];
  if (backlog.empty()) rr_order_.push_back(session_id);
  backlog.push_back(&waiter);
  ++queued_;
  // A slot may be free even with waiters queued (several Admits raced in):
  // hand it to the round-robin head, which may or may not be us.
  while (running_ < max_concurrent_) {
    Waiter* next = NextWaiterLocked();
    if (next == nullptr) break;
    next->admitted = true;
    ++running_;
  }
  cv_.NotifyAll();
  while (!waiter.admitted) cv_.Wait(&mutex_);
  ++stats_.admitted;
  return AdmissionTicket(this);
}

void FairScheduler::Release() {
  util::MutexLock lock(&mutex_);
  --running_;
  while (running_ < max_concurrent_) {
    Waiter* next = NextWaiterLocked();
    if (next == nullptr) break;
    next->admitted = true;
    ++running_;
  }
  cv_.NotifyAll();
}

size_t FairScheduler::queue_depth() const {
  util::MutexLock lock(&mutex_);
  return queued_;
}

FairScheduler::Stats FairScheduler::stats() const {
  util::MutexLock lock(&mutex_);
  return stats_;
}

}  // namespace server
}  // namespace systolic
