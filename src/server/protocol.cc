#include "server/protocol.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "faults/fault_plan.h"
#include "util/strings.h"

namespace systolic {
namespace server {

namespace {

constexpr char kTimeoutTag[] = "wire deadline expired";

Status TimeoutStatus(const char* op) {
  return Status::IOError(std::string(kTimeoutTag) + " during " + op);
}

/// Polls `fd` for `events`; OK when ready, timeout/IOError otherwise.
Status PollFor(int fd, short events, int timeout_ms, const char* op) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + ErrnoString(errno));
    }
    if (ready == 0) return TimeoutStatus(op);
    // POLLERR/POLLHUP fall through: the recv/send that follows reports the
    // precise verdict (EOF vs ECONNRESET).
    return Status::OK();
  }
}

}  // namespace

bool IsWireTimeout(const Status& status) {
  return status.IsIOError() &&
         status.message().rfind(kTimeoutTag, 0) == 0;
}

// ---- PosixWire -------------------------------------------------------------

PosixWire::PosixWire(int fd) : fd_(fd) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

PosixWire::~PosixWire() { Close(); }

Result<std::unique_ptr<PosixWire>> PosixWire::Dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + ErrnoString(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IOError(std::string("connect: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  return std::make_unique<PosixWire>(fd);
}

Result<size_t> PosixWire::Send(const char* data, size_t size, int timeout_ms) {
  if (fd_ < 0) return Status::IOError("send on a closed wire");
  for (;;) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return Status::IOError("send wrote zero bytes");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SYSTOLIC_RETURN_NOT_OK(PollFor(fd_, POLLOUT, timeout_ms, "send"));
      continue;
    }
    return Status::IOError(std::string("send: ") + ErrnoString(errno));
  }
}

Result<size_t> PosixWire::Recv(char* data, size_t size, int timeout_ms) {
  if (fd_ < 0) return Status::IOError("recv on a closed wire");
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SYSTOLIC_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms, "recv"));
      continue;
    }
    return Status::IOError(std::string("recv: ") + ErrnoString(errno));
  }
}

void PosixWire::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void PosixWire::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- framing ---------------------------------------------------------------

namespace {

Status SendAll(Wire& wire, const char* data, size_t size, int timeout_ms) {
  size_t sent = 0;
  while (sent < size) {
    SYSTOLIC_ASSIGN_OR_RETURN(
        const size_t n, wire.Send(data + sent, size - sent, timeout_ms));
    sent += n;
  }
  return Status::OK();
}

/// NotFound = clean end-of-stream before any byte. The first byte waits up
/// to `first_timeout_ms`; later bytes each wait up to `timeout_ms`.
Status RecvAll(Wire& wire, char* data, size_t size, bool* clean_eof,
               int first_timeout_ms, int timeout_ms) {
  size_t got = 0;
  while (got < size) {
    SYSTOLIC_ASSIGN_OR_RETURN(
        const size_t n,
        wire.Recv(data + got, size - got,
                  got == 0 ? first_timeout_ms : timeout_ms));
    if (n == 0) {
      if (clean_eof != nullptr && got == 0) {
        *clean_eof = true;
        return Status::NotFound("connection closed");
      }
      return Status::IOError("connection closed mid-frame");
    }
    got += n;
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(Wire& wire, const std::string& payload, int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::Capacity("frame exceeds " + std::to_string(kMaxFrameBytes) +
                            " bytes");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(size & 0xff),
                    static_cast<char>((size >> 8) & 0xff),
                    static_cast<char>((size >> 16) & 0xff),
                    static_cast<char>((size >> 24) & 0xff)};
  SYSTOLIC_RETURN_NOT_OK(SendAll(wire, header, sizeof(header), timeout_ms));
  return SendAll(wire, payload.data(), payload.size(), timeout_ms);
}

Result<std::string> ReadFrame(Wire& wire, bool* clean_eof,
                              int first_byte_timeout_ms, int timeout_ms) {
  char header[4];
  SYSTOLIC_RETURN_NOT_OK(RecvAll(wire, header, sizeof(header), clean_eof,
                                 first_byte_timeout_ms, timeout_ms));
  const uint32_t size = static_cast<uint32_t>(
      static_cast<unsigned char>(header[0]) |
      (static_cast<unsigned char>(header[1]) << 8) |
      (static_cast<unsigned char>(header[2]) << 16) |
      (static_cast<unsigned char>(header[3]) << 24));
  if (size > kMaxFrameBytes) {
    return Status::DataCorruption("frame length " + std::to_string(size) +
                                  " exceeds the protocol maximum");
  }
  std::string payload(size, '\0');
  if (size > 0) {
    SYSTOLIC_RETURN_NOT_OK(RecvAll(wire, payload.data(), size, nullptr,
                                   timeout_ms, timeout_ms));
  }
  return payload;
}

// ---- protocol v2 codec ----------------------------------------------------

std::string EncodeHello(const std::string& token) {
  if (token.empty()) return kHelloMagic;
  return std::string(kHelloMagic) + " " + token;
}

bool ParseHello(const std::string& payload, std::string* token) {
  const std::string magic(kHelloMagic);
  if (payload.rfind(magic, 0) != 0) return false;
  token->clear();
  if (payload.size() > magic.size() && payload[magic.size()] == ' ') {
    *token = payload.substr(magic.size() + 1);
    // A token with framing characters could never have been minted; treat it
    // as absent rather than letting it key the session maps.
    if (token->find_first_of(" \n") != std::string::npos) token->clear();
  }
  return true;
}

std::string EncodeRequest(uint64_t id, const std::string& line) {
  return "REQ " + std::to_string(id) + "\n" + line;
}

bool ParseRequest(const std::string& payload, uint64_t* id,
                  std::string* line) {
  if (payload.rfind("REQ ", 0) != 0) return false;
  const size_t nl = payload.find('\n');
  if (nl == std::string::npos) return false;
  int64_t parsed = 0;
  if (!ParseInt64(payload.substr(4, nl - 4), &parsed) || parsed <= 0) {
    return false;
  }
  *id = static_cast<uint64_t>(parsed);
  *line = payload.substr(nl + 1);
  return true;
}

uint64_t BackoffDelayMs(uint64_t seed, uint64_t attempt, uint64_t base_ms,
                        uint64_t cap_ms) {
  uint64_t delay = base_ms;
  for (uint64_t i = 0; i < attempt && delay < cap_ms; ++i) delay *= 2;
  if (delay > cap_ms) delay = cap_ms;
  // Jitter in [delay/2, delay], keyed like the crash planner's cut schedule
  // so concurrent clients' retry storms decorrelate deterministically.
  const uint64_t key =
      faults::MixFaultKey(faults::MixFaultKey(seed ^ 0xbacc'0ffeULL) ^ attempt);
  const uint64_t half = delay / 2;
  return delay - (half == 0 ? 0 : key % (half + 1));
}

}  // namespace server
}  // namespace systolic
