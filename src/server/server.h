#ifndef SYSTOLIC_SERVER_SERVER_H_
#define SYSTOLIC_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/scheduler.h"
#include "server/session.h"
#include "server/shared_catalog.h"
#include "system/machine.h"

namespace systolic {
namespace server {

/// Shape of the S24 server.
struct ServerConfig {
  /// Per-session machine shape (memories, device sizes, planner defaults).
  /// The server overrides device.num_chips and shared_pool to point every
  /// session at the one shared pool.
  machine::MachineConfig machine;
  /// Chips in the shared pool (>= 1).
  size_t num_chips = 1;
  /// Concurrent client sessions admitted; further Connects get Capacity.
  size_t max_sessions = 64;
  /// Plans running on the pool at once; 0 = num_chips.
  size_t max_concurrent_plans = 0;
  /// Bounded admission queue beyond the running plans.
  size_t max_queued_plans = 64;
  /// Crash-safe catalog directory; empty = in-memory shared catalog.
  std::string durable_dir;
};

/// Server-wide counters (satellite of DESIGN S24): session admission plus
/// the group-commit histogram. Per-session ExecStats live in the sessions.
struct ServerStats {
  size_t sessions_admitted = 0;
  size_t sessions_rejected = 0;
  size_t active_sessions = 0;
  FairScheduler::Stats scheduler;
  GroupCommitStats group_commit;
};

/// The concurrent multi-session front end over one shared §9 machine
/// substrate (DESIGN S24): sessions own private buffers and settings, share
/// the chip pool through fair-share admission, read pinned snapshot images,
/// and commit through the cross-session group-commit pipeline.
///
/// Embedded use (tests, benches): Create + Connect, drive sessions from
/// your own threads. Network use: Listen + Serve accept length-framed
/// connections ([u32 LE payload length][payload]); each request frame is
/// one command line, each response frame is "OK\n<output>" or
/// "ERR <status>\n<output>". The protocol line "SHUTDOWN" stops the server.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits a new session (Capacity beyond max_sessions). The session is
  /// driven by ONE caller thread at a time.
  Result<std::shared_ptr<Session>> Connect();

  /// Releases a session's slot.
  void Disconnect(uint64_t session_id);

  SharedCatalog& catalog() { return *catalog_; }
  FairScheduler& scheduler() { return *scheduler_; }
  ServerStats stats() const;

  /// Binds and listens on `port` (0 = ephemeral); port() reports the bound
  /// one.
  Status Listen(uint16_t port);
  uint16_t port() const { return port_; }

  /// Accept loop: one thread per connection, one session per connection.
  /// Blocks until RequestShutdown (or the protocol SHUTDOWN line), then
  /// closes every connection and joins. Call from the owning thread after
  /// Listen.
  Status Serve();

  /// Asynchronously stops Serve: safe from any thread, including a
  /// connection handler.
  void RequestShutdown();

 private:
  explicit Server(ServerConfig config);

  void HandleConnection(int fd);

  ServerConfig config_;
  std::shared_ptr<db::ChipPool> pool_;
  std::unique_ptr<SharedCatalog> catalog_;
  std::unique_ptr<FairScheduler> scheduler_;

  mutable std::mutex mutex_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  size_t sessions_admitted_ = 0;
  size_t sessions_rejected_ = 0;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool shutdown_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

/// Minimal blocking client for the length-framed protocol; used by
/// query_shell --connect, the smoke script and the benches.
class Client {
 public:
  /// One command's round trip.
  struct Reply {
    bool ok = false;
    /// The status text after "ERR " (empty when ok).
    std::string error;
    /// Everything the command printed on the server.
    std::string output;
  };

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`.
  static Result<Client> Connect(uint16_t port);

  Result<Reply> Roundtrip(const std::string& line);

  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SERVER_H_
