#ifndef SYSTOLIC_SERVER_SERVER_H_
#define SYSTOLIC_SERVER_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "server/shared_catalog.h"
#include "system/machine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace systolic {
namespace server {

/// Shape of the S24 server (+ the S26 reliability knobs).
struct ServerConfig {
  /// Per-session machine shape (memories, device sizes, planner defaults).
  /// The server overrides device.num_chips and shared_pool to point every
  /// session at the one shared pool.
  machine::MachineConfig machine;
  /// Chips in the shared pool (>= 1).
  size_t num_chips = 1;
  /// Concurrent client sessions admitted; further Connects get Capacity.
  size_t max_sessions = 64;
  /// Plans running on the pool at once; 0 = num_chips.
  size_t max_concurrent_plans = 0;
  /// Bounded admission queue beyond the running plans.
  size_t max_queued_plans = 64;
  /// Crash-safe catalog directory; empty = in-memory shared catalog.
  std::string durable_dir;
  /// Io (optionally carrying a CrashInjector) for the durable catalog — the
  /// chaos fuzzer cuts the server's write path through this.
  durability::Io durable_io;
  /// Idle budget (ms): a connection that sends no frame for this long is
  /// closed, and a detached (resumable) session idle this long is reaped —
  /// a slow-loris client cannot pin an admission slot. <= 0 disables both.
  int idle_timeout_ms = 30'000;
  /// Per-poll IO budget (ms) once a frame is in flight, for reads AND
  /// writes; <= 0 means no budget (block indefinitely).
  int io_timeout_ms = 10'000;
  /// Replies longer than this are truncated into a well-formed ERR frame
  /// instead of killing the connection. 0 = the wire's own kMaxFrameBytes;
  /// tests lower it to exercise the truncation path cheaply.
  size_t max_reply_bytes = 0;
  /// Stamped into resume tokens ("b<boot>-s<n>"). Give each incarnation
  /// over one durable directory a distinct boot id so fresh tokens cannot
  /// collide with tokens recovered from the WAL (minting also skips
  /// recovered tokens, so any value is safe — this just keeps them tidy).
  uint64_t boot_id = 1;
};

/// Server-wide counters (DESIGN S24 + the S26 reliability layer).
/// Per-session ExecStats live in the sessions.
struct ServerStats {
  size_t sessions_admitted = 0;
  size_t sessions_rejected = 0;
  size_t active_sessions = 0;
  /// v2 reconnects that re-attached an existing or recovered session.
  size_t sessions_resumed = 0;
  /// Sessions disconnected by the idle-timeout reaper.
  size_t sessions_reaped = 0;
  /// Transient accept() failures retried instead of killing Serve.
  size_t accept_retries = 0;
  /// Retried request ids answered from the per-session reply cache.
  size_t replies_from_cache = 0;
  /// Retried request ids answered from WAL-recovered acks (post-crash).
  size_t recovered_dedups = 0;
  /// Replies exceeding the frame limit, truncated instead of dropped.
  size_t oversize_replies = 0;
  FairScheduler::Stats scheduler;
  GroupCommitStats group_commit;
};

/// The concurrent multi-session front end over one shared §9 machine
/// substrate (DESIGN S24), hardened for real networks by the S26
/// request-reliability layer: protocol-v2 request ids with a per-session
/// reply cache (exactly-once effects under at-least-once delivery, WAL-acked
/// across crashes), poll-guarded deadlines on every read/write, idle-session
/// reaping, resumable sessions (a torn connection detaches its session; a
/// HELLO with the session token re-attaches it), and a graceful DRAIN mode
/// next to the hard SHUTDOWN.
///
/// Embedded use (tests, benches): Create + Connect/Resume, drive sessions
/// from your own threads. Network use: Listen + Serve accept length-framed
/// connections ([u32 LE payload length][payload]); see protocol.h for the
/// v2 frame grammar and the legacy v1 fallback.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits a new session (Capacity beyond max_sessions). The session is
  /// driven by ONE caller thread at a time; its token() can Resume it later.
  Result<std::shared_ptr<Session>> Connect() EXCLUDES(mutex_);

  /// Re-attaches the session named by `token`: a live detached session, or —
  /// after a crash — a fresh session primed with the WAL-recovered ack
  /// high-water mark so retried commits are deduplicated. NotFound for an
  /// unknown token; Capacity when a fresh admission would exceed the limit.
  Result<std::shared_ptr<Session>> Resume(const std::string& token)
      EXCLUDES(mutex_);

  /// Releases a session's slot.
  void Disconnect(uint64_t session_id) EXCLUDES(mutex_);

  SharedCatalog& catalog() { return *catalog_; }
  FairScheduler& scheduler() { return *scheduler_; }
  ServerStats stats() const EXCLUDES(mutex_);

  /// Binds and listens on `port` (0 = ephemeral); port() reports the bound
  /// one.
  Status Listen(uint16_t port) EXCLUDES(mutex_);
  uint16_t port() const EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return port_;
  }

  /// Accept loop: one thread per connection, one session per connection.
  /// Blocks until RequestShutdown / RequestDrain (or the protocol SHUTDOWN /
  /// DRAIN lines). Shutdown tears every connection down immediately; drain
  /// stops accepting, lets every in-flight command finish and be replied to,
  /// waits for the cross-session group commit to quiesce, then closes. Call
  /// from the owning thread after Listen.
  Status Serve();

  /// Asynchronously stops Serve (hard): safe from any thread, including a
  /// connection handler.
  void RequestShutdown();

  /// Asynchronously drains Serve (graceful): stop accepting, finish
  /// in-flight commands, flush group commit, close.
  void RequestDrain();

 private:
  explicit Server(ServerConfig config);

  /// Per-session bookkeeping guarded by mutex_. `attached` = a network
  /// handler owns the session now; detached network sessions are resumable
  /// until the reaper collects them.
  struct Slot {
    std::shared_ptr<Session> session;
    bool attached = false;
    bool busy = false;  ///< Executing a command right now.
    bool close_after_reply = false;  ///< Drain/steal: finish, reply, close.
    bool network = false;  ///< Ever network-attached (reapable).
    Wire* wire = nullptr;  ///< Attached connection's wire (for steal/drain).
    std::chrono::steady_clock::time_point last_active;
  };

  void HandleConnection(int fd) EXCLUDES(mutex_);
  /// The v2 session loop (after a HELLO); `token` empty = new session.
  void HandleV2(Wire& wire, const std::string& token) EXCLUDES(mutex_);
  /// The legacy v1 loop; `first` is the already-read first command frame.
  void HandleV1(Wire& wire, std::string first) EXCLUDES(mutex_);

  /// Writes `payload`, substituting a well-formed truncated ERR reply when
  /// it exceeds the frame limit (the connection survives oversized PRINTs).
  Status WriteReply(Wire& wire, const std::string& payload) EXCLUDES(mutex_);

  /// Admission + slot/token bookkeeping; caller holds mutex_.
  Result<std::shared_ptr<Session>> AdmitLocked(bool network)
      REQUIRES(mutex_);
  /// Mints "b<boot>-s<n>", skipping live and WAL-recovered tokens. Calls
  /// into the shared catalog under mutex_ — legal because kServer is
  /// ACQUIRED_BEFORE kSharedCatalog in the lock hierarchy (DESIGN §2.10).
  std::string MintTokenLocked() REQUIRES(mutex_);
  /// Attach (or steal) the v2 session for `token`; empty = admit new.
  /// Returns the session, waiting out a concurrent handler on a steal
  /// (mutex_ is released while waiting, like every CondVar wait).
  Result<std::shared_ptr<Session>> AttachV2(const std::string& token,
                                            Wire* wire) REQUIRES(mutex_);
  /// Detach-or-disconnect at v2 handler exit.
  void ReleaseV2(uint64_t session_id, bool disconnect) EXCLUDES(mutex_);

  void ReaperLoop() EXCLUDES(mutex_);

  ServerConfig config_;
  std::shared_ptr<db::ChipPool> pool_;
  std::unique_ptr<SharedCatalog> catalog_;
  std::unique_ptr<FairScheduler> scheduler_;

  /// kServer: the OUTERMOST rank — handler threads hold mutex_ while
  /// calling into the shared catalog (MintTokenLocked → RecoveredAckFor).
  mutable util::Mutex mutex_{util::LockRank::kServer, "server"};
  /// Woken when a slot detaches, a session disconnects, or drain/shutdown
  /// starts; steal waits and the Serve drain barrier sleep on it.
  util::CondVar slots_cv_;
  uint64_t next_session_id_ GUARDED_BY(mutex_) = 1;
  uint64_t token_nonce_ GUARDED_BY(mutex_) = 1;
  std::map<uint64_t, Slot> slots_ GUARDED_BY(mutex_);
  /// token -> session id.
  std::map<std::string, uint64_t> tokens_ GUARDED_BY(mutex_);
  size_t sessions_admitted_ GUARDED_BY(mutex_) = 0;
  size_t sessions_rejected_ GUARDED_BY(mutex_) = 0;
  size_t sessions_resumed_ GUARDED_BY(mutex_) = 0;
  size_t sessions_reaped_ GUARDED_BY(mutex_) = 0;
  size_t accept_retries_ GUARDED_BY(mutex_) = 0;
  size_t replies_from_cache_ GUARDED_BY(mutex_) = 0;
  size_t recovered_dedups_ GUARDED_BY(mutex_) = 0;
  size_t oversize_replies_ GUARDED_BY(mutex_) = 0;

  int listen_fd_ GUARDED_BY(mutex_) = -1;
  uint16_t port_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  bool draining_ GUARDED_BY(mutex_) = false;
  uint64_t next_wire_id_ GUARDED_BY(mutex_) = 1;
  std::map<uint64_t, Wire*> live_wires_ GUARDED_BY(mutex_);
  std::vector<std::thread> connection_threads_ GUARDED_BY(mutex_);
  /// Started by Serve, joined by Serve/~Server — only the owning thread
  /// touches the thread object itself, so it is not guarded.
  std::thread reaper_;
  util::CondVar reaper_cv_;
  bool reaper_stop_ GUARDED_BY(mutex_) = false;
};

/// Minimal blocking v1 client for the length-framed protocol; used by the
/// legacy smoke path and the protocol-robustness tests. New code should use
/// ReliableClient (reliable_client.h).
class Client {
 public:
  /// One command's round trip.
  struct Reply {
    bool ok = false;
    /// The status text after "ERR " (empty when ok).
    std::string error;
    /// Everything the command printed on the server.
    std::string output;
  };

  Client() = default;
  ~Client() = default;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`.
  static Result<Client> Connect(uint16_t port);

  /// Bounds every send/recv poll; <= 0 = block indefinitely (the default).
  /// With a budget set, a stalled server surfaces as IOError instead of a
  /// hang.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  Result<Reply> Roundtrip(const std::string& line);

  void Close();

 private:
  explicit Client(std::unique_ptr<Wire> wire) : wire_(std::move(wire)) {}
  std::unique_ptr<Wire> wire_;
  int io_timeout_ms_ = -1;
};

/// Splits a reply payload into Client::Reply; DataCorruption on a malformed
/// verdict line. Shared by Client and ReliableClient.
Result<Client::Reply> ParseReplyPayload(const std::string& payload);

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SERVER_H_
