#include "server/shared_catalog.h"

#include <algorithm>

namespace systolic {
namespace server {

SharedCatalog::SharedCatalog() {
  // Version 1, like a freshly opened durable directory: version 0 is
  // reserved for pre-history (seeded/recovered relations conflict with
  // nobody).
  auto image = std::make_shared<CatalogImage>();
  image->version = 1;
  image_ = std::move(image);
}

Result<std::unique_ptr<SharedCatalog>> SharedCatalog::Open(
    const std::string& directory, durability::Io io) {
  auto catalog = std::unique_ptr<SharedCatalog>(new SharedCatalog());
  SYSTOLIC_ASSIGN_OR_RETURN(catalog->durable_,
                            durability::DurableCatalog::Open(directory, io));
  auto image = std::make_shared<CatalogImage>();
  image->version = 1;
  for (const std::string& name :
       catalog->durable_->catalog().RelationNames()) {
    SYSTOLIC_ASSIGN_OR_RETURN(const rel::Relation* relation,
                              catalog->durable_->catalog().GetRelation(name));
    // writer_version 0: recovered relations are pre-history, conflicting
    // with no session's snapshot.
    image->relations.emplace(
        name, ImageEntry{std::make_shared<const rel::Relation>(*relation), 0});
  }
  // The catalog is not shared yet, but the guarded fields are initialized
  // under their mutex anyway: the static analysis holds Open to the same
  // proof obligations as every other non-constructor.
  util::MutexLock lock(&catalog->mutex_);
  catalog->image_ = std::move(image);
  catalog->recovered_acks_ = catalog->durable_->recovered_acks();
  catalog->durability_stats_ = catalog->durable_->stats();
  return catalog;
}

bool SharedCatalog::RecoveredAckFor(const std::string& token,
                                    uint64_t* request_id,
                                    uint64_t* records) const {
  util::MutexLock lock(&mutex_);
  const auto it = recovered_acks_.find(token);
  if (it == recovered_acks_.end()) return false;
  *request_id = it->second.request_id;
  *records = it->second.records;
  return true;
}

void SharedCatalog::Quiesce() {
  util::MutexLock lock(&mutex_);
  while (leader_active_ || !queue_.empty()) cv_.Wait(&mutex_);
}

std::shared_ptr<const CatalogImage> SharedCatalog::Snapshot() const {
  util::MutexLock lock(&mutex_);
  return image_;
}

Status SharedCatalog::Seed(const std::string& name, rel::Relation relation) {
  util::MutexLock lock(&mutex_);
  if (stats_.batches > 0 || leader_active_ || !queue_.empty()) {
    return Status::InvalidArgument(
        "Seed is start-up only; the catalog has live commit traffic");
  }
  auto image = std::make_shared<CatalogImage>(*image_);
  image->relations[name] = ImageEntry{
      std::make_shared<const rel::Relation>(std::move(relation)), 0};
  image_ = std::move(image);
  return Status::OK();
}

Result<SharedCatalog::CommitResult> SharedCatalog::CommitGroup(
    uint64_t snapshot_version,
    const std::vector<std::pair<std::string, const rel::Relation*>>& puts,
    CommitTag tag) {
  if (puts.empty()) return CommitResult{};
  CommitRequest request;
  request.snapshot_version = snapshot_version;
  request.tag = std::move(tag);
  request.puts.reserve(puts.size());
  for (const auto& [name, relation] : puts) {
    // Copy once; an accepted group's copies become the image entries.
    request.puts.emplace_back(
        name, std::make_shared<const rel::Relation>(*relation));
  }

  util::MutexLock lock(&mutex_);
  queue_.push_back(&request);
  for (;;) {
    while (!request.done && leader_active_) cv_.Wait(&mutex_);
    if (request.done) break;
    // Become the leader: take EVERYTHING queued (including this request)
    // into one batch — that is the fsync amortization.
    leader_active_ = true;
    std::vector<CommitRequest*> batch(queue_.begin(), queue_.end());
    queue_.clear();
    lock.Unlock();
    ProcessBatch(batch);
    lock.Lock();
    leader_active_ = false;
    cv_.NotifyAll();
  }
  if (!request.status.ok()) return request.status;
  return request.result;
}

void SharedCatalog::ProcessBatch(const std::vector<CommitRequest*>& batch) {
  // Runs without mutex_ held; leader_active_ makes this the only thread
  // touching durable_ or preparing an image. Snapshot() keeps serving the
  // old image throughout.
  std::shared_ptr<const CatalogImage> base;
  {
    util::MutexLock lock(&mutex_);
    base = image_;
  }
  auto next = std::make_shared<CatalogImage>(*base);
  next->version = base->version + 1;

  std::vector<CommitRequest*> accepted;
  accepted.reserve(batch.size());
  size_t conflicts = 0;
  for (CommitRequest* request : batch) {
    // First-committer-wins on relation-name write sets, checked against the
    // image being built: a same-batch predecessor writing the same name
    // conflicts exactly like an already-published one.
    Status verdict = Status::OK();
    for (const auto& [name, relation] : request->puts) {
      const auto it = next->relations.find(name);
      if (it != next->relations.end() &&
          it->second.writer_version > request->snapshot_version) {
        verdict = Status::Aborted(
            "snapshot conflict: relation '" + name +
            "' was committed after this session's snapshot (version " +
            std::to_string(request->snapshot_version) +
            "); first committer wins — re-read and retry");
        break;
      }
    }
    if (verdict.ok() && durable_ != nullptr) {
      // Stage + seal now so later groups in this batch validate against
      // this one (sealed groups are visible to the WAL's staging checks);
      // a group that cannot stage is rejected alone, not the whole batch.
      for (const auto& [name, relation] : request->puts) {
        verdict = durable_->LogPut(name, *relation);
        if (!verdict.ok()) break;
      }
      if (verdict.ok() && !request->tag.token.empty() &&
          request->tag.request_id > 0) {
        // The ack rides in the SAME sealed group: the (token, request id)
        // pair becomes durable atomically with the commit, so recovery
        // either sees both (retry deduped) or neither (retry re-executes).
        verdict = durable_->LogAck(request->tag.token,
                                   request->tag.request_id,
                                   request->puts.size());
      }
      if (verdict.ok()) {
        verdict = durable_->SealStagedGroup();
      } else {
        durable_->Abort();
      }
    }
    if (!verdict.ok()) {
      request->status = verdict;
      if (verdict.IsAborted()) ++conflicts;
      continue;
    }
    for (const auto& [name, relation] : request->puts) {
      next->relations[name] = ImageEntry{relation, next->version};
    }
    request->result.records = request->puts.size();
    request->result.version = next->version;
    accepted.push_back(request);
  }

  // ONE append + ONE fsync for every accepted group in the batch.
  Status committed = Status::OK();
  size_t sealed_records = 0;
  if (durable_ != nullptr && !accepted.empty()) {
    for (const CommitRequest* request : accepted) {
      sealed_records += request->puts.size();
    }
    committed = durable_->CommitSealedGroups();
    if (!committed.ok()) durable_->AbortSealedGroups();
  }

  util::MutexLock lock(&mutex_);
  if (!committed.ok()) {
    // Nothing was acknowledged; every accepted group shares the verdict.
    for (CommitRequest* request : accepted) {
      request->status = committed;
      request->result = CommitResult{};
    }
  } else if (!accepted.empty()) {
    image_ = std::move(next);
    stats_.commits += accepted.size();
    stats_.batches += 1;
    stats_.batch_size_histogram[accepted.size()] += 1;
    durability_stats_.wal_records += sealed_records;
  }
  stats_.conflicts += conflicts;
  for (CommitRequest* request : batch) request->done = true;
  // cv_ is notified by the CommitGroup frame that called us (after it
  // clears leader_active_), so followers and the next leader wake together.
}

Status SharedCatalog::Checkpoint() {
  if (durable_ == nullptr) return Status::OK();
  util::MutexLock lock(&mutex_);
  // Exclude the group-commit leader: checkpointing rewrites the WAL.
  while (leader_active_) cv_.Wait(&mutex_);
  leader_active_ = true;
  lock.Unlock();
  const Status status = durable_->Checkpoint();
  lock.Lock();
  if (status.ok()) durability_stats_.checkpoints += 1;
  leader_active_ = false;
  cv_.NotifyAll();
  return status;
}

GroupCommitStats SharedCatalog::stats() const {
  util::MutexLock lock(&mutex_);
  return stats_;
}

durability::DurabilityStats SharedCatalog::durability_stats() const {
  util::MutexLock lock(&mutex_);
  return durability_stats_;
}

}  // namespace server
}  // namespace systolic
