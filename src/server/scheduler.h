#ifndef SYSTOLIC_SERVER_SCHEDULER_H_
#define SYSTOLIC_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "util/result.h"

namespace systolic {
namespace server {

class FairScheduler;

/// RAII admission ticket: holding one means the session may run a plan on
/// the shared device pool right now. Releasing (destruction) hands the slot
/// to the next queued session in round-robin order.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket();
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : scheduler_(other.scheduler_) {
    other.scheduler_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  friend class FairScheduler;
  explicit AdmissionTicket(FairScheduler* scheduler)
      : scheduler_(scheduler) {}
  FairScheduler* scheduler_ = nullptr;
};

/// Fair-share admission control over the shared ChipPool (DESIGN S24).
///
/// At most `max_concurrent` plans run at once; further Admit calls wait in
/// PER-SESSION FIFO queues served ROUND-ROBIN across sessions, so a chatty
/// session queues behind its own backlog while a quiet one is admitted on
/// its first try — fair share at plan granularity, complementing the
/// ChipPool's fair interleave at tile granularity. The total wait queue is
/// bounded: when `max_queued` sessions are already waiting, Admit fails
/// immediately with Capacity (admission control, not buffering).
class FairScheduler {
 public:
  struct Stats {
    /// Plans admitted (immediately or after queueing).
    size_t admitted = 0;
    /// Plans bounced off the full queue with Capacity.
    size_t rejected = 0;
  };

  FairScheduler(size_t max_concurrent, size_t max_queued);
  ~FairScheduler() = default;
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Blocks until this session holds a run slot; Capacity when the bounded
  /// wait queue is full.
  Result<AdmissionTicket> Admit(uint64_t session_id);

  /// Waiters currently queued (the EXPLAIN "admission queue depth").
  size_t queue_depth() const;

  Stats stats() const;

 private:
  friend class AdmissionTicket;
  void Release();

  struct Waiter {
    uint64_t session_id = 0;
    bool admitted = false;
  };

  /// Pops the next waiter round-robin across sessions; null when none wait.
  /// Caller holds mutex_.
  Waiter* NextWaiter();

  const size_t max_concurrent_;
  const size_t max_queued_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t queued_ = 0;
  /// Per-session FIFO backlogs; served round-robin by rr_order_.
  std::map<uint64_t, std::deque<Waiter*>> backlogs_;
  /// Sessions with a non-empty backlog, in round-robin service order.
  std::deque<uint64_t> rr_order_;
  Stats stats_;
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SCHEDULER_H_
