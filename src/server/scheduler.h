#ifndef SYSTOLIC_SERVER_SCHEDULER_H_
#define SYSTOLIC_SERVER_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace systolic {
namespace server {

class FairScheduler;

/// RAII admission ticket: holding one means the session may run a plan on
/// the shared device pool right now. Releasing (destruction) hands the slot
/// to the next queued session in round-robin order.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket();
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : scheduler_(other.scheduler_) {
    other.scheduler_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  friend class FairScheduler;
  explicit AdmissionTicket(FairScheduler* scheduler)
      : scheduler_(scheduler) {}
  FairScheduler* scheduler_ = nullptr;
};

/// Fair-share admission control over the shared ChipPool (DESIGN S24).
///
/// At most `max_concurrent` plans run at once; further Admit calls wait in
/// PER-SESSION FIFO queues served ROUND-ROBIN across sessions, so a chatty
/// session queues behind its own backlog while a quiet one is admitted on
/// its first try — fair share at plan granularity, complementing the
/// ChipPool's fair interleave at tile granularity. The total wait queue is
/// bounded: when `max_queued` sessions are already waiting, Admit fails
/// immediately with Capacity (admission control, not buffering).
class FairScheduler {
 public:
  struct Stats {
    /// Plans admitted (immediately or after queueing).
    size_t admitted = 0;
    /// Plans bounced off the full queue with Capacity.
    size_t rejected = 0;
  };

  FairScheduler(size_t max_concurrent, size_t max_queued);
  ~FairScheduler() = default;
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Blocks until this session holds a run slot; Capacity when the bounded
  /// wait queue is full.
  Result<AdmissionTicket> Admit(uint64_t session_id) EXCLUDES(mutex_);

  /// Waiters currently queued (the EXPLAIN "admission queue depth").
  size_t queue_depth() const EXCLUDES(mutex_);

  Stats stats() const EXCLUDES(mutex_);

 private:
  friend class AdmissionTicket;
  void Release() EXCLUDES(mutex_);

  struct Waiter {
    uint64_t session_id = 0;
    bool admitted = false;
  };

  /// Pops the next waiter round-robin across sessions; null when none wait.
  Waiter* NextWaiterLocked() REQUIRES(mutex_);

  const size_t max_concurrent_;
  const size_t max_queued_;

  mutable util::Mutex mutex_{util::LockRank::kScheduler, "scheduler"};
  util::CondVar cv_;
  size_t running_ GUARDED_BY(mutex_) = 0;
  size_t queued_ GUARDED_BY(mutex_) = 0;
  /// Per-session FIFO backlogs; served round-robin by rr_order_.
  std::map<uint64_t, std::deque<Waiter*>> backlogs_ GUARDED_BY(mutex_);
  /// Sessions with a non-empty backlog, in round-robin service order.
  std::deque<uint64_t> rr_order_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SCHEDULER_H_
