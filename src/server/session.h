#ifndef SYSTOLIC_SERVER_SESSION_H_
#define SYSTOLIC_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "server/scheduler.h"
#include "server/shared_catalog.h"
#include "system/command.h"
#include "system/machine.h"

namespace systolic {
namespace server {

/// One client's session state on the S24 server: a private §9 machine
/// (buffers, SET PLANNER/BACKEND/FAULTS/DURABILITY all scoped here) whose
/// engines drive the server's SHARED chip pool, whose reads see a pinned
/// immutable catalog image (snapshot isolation), and whose durable commits
/// flow through the shared cross-session group-commit pipeline.
///
/// Snapshot discipline: before every command executed OUTSIDE a transaction
/// the session re-pins the newest published image (an O(1) pointer swap —
/// relations are copied onto the private disk unit lazily, when a LOAD
/// actually reads them); between BEGIN and COMMIT the pin is frozen, so a
/// transaction's reads are repeatable and its COMMIT is conflict-checked
/// against exactly the snapshot it read. Commits that lose
/// first-committer-wins surface as Aborted — the transaction's effects stay
/// session-private and the client retries against a fresh snapshot.
///
/// A Session is used by ONE client thread at a time (the server enforces
/// this); cross-session state (catalog, scheduler, chip pool) is internally
/// synchronized.
class Session {
 public:
  /// `catalog` and `scheduler` must outlive the session. `config` should
  /// carry the server's shared_pool and chip count.
  Session(uint64_t id, SharedCatalog* catalog, FairScheduler* scheduler,
          machine::MachineConfig config);

  uint64_t id() const { return id_; }

  /// Executes one command line after admission through the fair-share
  /// scheduler; returns everything the command printed. Errors carry the
  /// printed output in the session's last_output() so protocol layers can
  /// still relay partial results.
  Result<std::string> Execute(const std::string& line);

  /// Output printed by the most recent Execute (even a failed one).
  const std::string& last_output() const { return last_output_; }

  /// Per-session durability counters: records THIS session pushed through
  /// the shared group-commit pipeline (never another session's).
  const durability::DurabilityStats& durability_stats() const {
    return durability_stats_;
  }

  /// The version this session's reads are pinned at.
  uint64_t snapshot_version() const { return pinned_version_; }

  machine::Machine& machine() { return machine_; }
  machine::CommandInterpreter& interpreter() { return interpreter_; }

 private:
  /// Pins the newest catalog image (O(1) — relations fault in lazily via
  /// the machine's disk source). Called only between transactions.
  void RefreshSnapshot();

  uint64_t id_;
  SharedCatalog* catalog_;
  FairScheduler* scheduler_;
  machine::Machine machine_;
  std::ostringstream out_;
  machine::CommandInterpreter interpreter_;
  std::shared_ptr<const CatalogImage> pinned_;
  uint64_t pinned_version_ = 0;
  /// name -> image relation last mirrored onto the disk unit; pointer
  /// equality with the pinned entry means the disk copy is current.
  std::map<std::string, std::shared_ptr<const rel::Relation>> mirrored_;
  durability::DurabilityStats durability_stats_;
  std::string last_output_;
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SESSION_H_
