#ifndef SYSTOLIC_SERVER_SESSION_H_
#define SYSTOLIC_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "server/scheduler.h"
#include "server/shared_catalog.h"
#include "system/command.h"
#include "system/machine.h"

namespace systolic {
namespace server {

/// One client's session state on the S24 server: a private §9 machine
/// (buffers, SET PLANNER/BACKEND/FAULTS/DURABILITY all scoped here) whose
/// engines drive the server's SHARED chip pool, whose reads see a pinned
/// immutable catalog image (snapshot isolation), and whose durable commits
/// flow through the shared cross-session group-commit pipeline.
///
/// Snapshot discipline: before every command executed OUTSIDE a transaction
/// the session re-pins the newest published image (an O(1) pointer swap —
/// relations are copied onto the private disk unit lazily, when a LOAD
/// actually reads them); between BEGIN and COMMIT the pin is frozen, so a
/// transaction's reads are repeatable and its COMMIT is conflict-checked
/// against exactly the snapshot it read. Commits that lose
/// first-committer-wins surface as Aborted — the transaction's effects stay
/// session-private and the client retries against a fresh snapshot.
///
/// A Session is used by ONE client thread at a time (the server enforces
/// this); cross-session state (catalog, scheduler, chip pool) is internally
/// synchronized. That single-driver discipline is why this class carries no
/// mutex and no GUARDED_BY annotations: the attach/steal protocol in
/// Server (Slot::attached under the kServer-rank mutex) hands the whole
/// session from one handler thread to the next, release-to-acquire, before
/// any field here is touched (DESIGN §2.10).
class Session {
 public:
  /// `catalog` and `scheduler` must outlive the session. `config` should
  /// carry the server's shared_pool and chip count.
  Session(uint64_t id, SharedCatalog* catalog, FairScheduler* scheduler,
          machine::MachineConfig config);

  uint64_t id() const { return id_; }

  /// The resume token this session is addressable by (DESIGN S26); minted by
  /// the server at admission.
  const std::string& token() const { return token_; }
  void set_token(std::string token) { token_ = std::move(token); }

  /// Executes one command line after admission through the fair-share
  /// scheduler; returns everything the command printed. Errors carry the
  /// printed output in the session's last_output() so protocol layers can
  /// still relay partial results.
  Result<std::string> Execute(const std::string& line);

  /// One protocol-v2 request (DESIGN S26): the full wire payload for request
  /// `id`, plus how it was produced.
  struct RequestOutcome {
    /// "OK\n<output>", "ERR <status>\n<output>", or "RETRY <status>\n".
    std::string payload;
    /// Replayed from the reply cache (the id was already executed).
    bool from_cache = false;
    /// Answered from a WAL-recovered ack (committed before the last crash).
    bool recovered_dedup = false;
    /// Pre-execution admission bounce: the id was NOT consumed; the client
    /// must back off and resend the SAME id.
    bool retryable = false;
  };

  /// Executes request `id` exactly once. Ids are per-session and
  /// monotonically increasing; a resend of the last id replays the cached
  /// reply without re-execution, an id at or below the WAL-recovered ack
  /// high-water mark is answered "already committed", and anything else
  /// non-monotonic is an InvalidArgument protocol error. Only one in-flight
  /// request per session means caching the LAST reply suffices.
  Result<RequestOutcome> ExecuteRequest(uint64_t id, const std::string& line);

  /// Marks this session as resumed from crash recovery: requests up to
  /// `request_id` (which committed `records` relations) are deduplicated,
  /// and — the in-memory id sequence having died with the old process — the
  /// first incoming id above the mark is accepted unconditionally.
  void AdoptRecoveredAck(uint64_t request_id, uint64_t records);

  /// The last request id consumed (0 before any v2 request).
  uint64_t last_request_id() const { return last_request_id_; }

  /// Output printed by the most recent Execute (even a failed one).
  const std::string& last_output() const { return last_output_; }

  /// Per-session durability counters: records THIS session pushed through
  /// the shared group-commit pipeline (never another session's).
  const durability::DurabilityStats& durability_stats() const {
    return durability_stats_;
  }

  /// The version this session's reads are pinned at.
  uint64_t snapshot_version() const { return pinned_version_; }

  machine::Machine& machine() { return machine_; }
  machine::CommandInterpreter& interpreter() { return interpreter_; }

 private:
  /// Pins the newest catalog image (O(1) — relations fault in lazily via
  /// the machine's disk source). Called only between transactions.
  void RefreshSnapshot();

  /// Snapshot refresh + interpreter run (admission already granted); the
  /// command status, with output in last_output_.
  Status RunAdmitted(const std::string& line);

  uint64_t id_;
  std::string token_;
  SharedCatalog* catalog_;
  FairScheduler* scheduler_;
  machine::Machine machine_;
  std::ostringstream out_;
  machine::CommandInterpreter interpreter_;
  std::shared_ptr<const CatalogImage> pinned_;
  uint64_t pinned_version_ = 0;
  /// name -> image relation last mirrored onto the disk unit; pointer
  /// equality with the pinned entry means the disk copy is current.
  std::map<std::string, std::shared_ptr<const rel::Relation>> mirrored_;
  durability::DurabilityStats durability_stats_;
  std::string last_output_;

  // ---- S26 request-reliability state ----
  uint64_t last_request_id_ = 0;
  std::string last_reply_;
  bool have_last_reply_ = false;
  /// In-flight v2 request id, visible to the commit sink for WAL ack
  /// tagging; 0 outside ExecuteRequest (v1/embedded commits go untagged).
  uint64_t current_request_id_ = 0;
  uint64_t recovered_ack_id_ = 0;
  uint64_t recovered_ack_records_ = 0;
  bool has_recovered_ack_ = false;
  /// True until the first v2 request is consumed: the first id initializes
  /// the sequence (a reconnecting client's ids continue where its previous
  /// session — possibly lost to a crash or reap — left off); monotonicity is
  /// enforced from then on.
  bool accept_any_first_id_ = true;
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SESSION_H_
