#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace systolic {
namespace server {

namespace {

// ---- length-framed wire helpers: [u32 LE payload length][payload] --------

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// NotFound = clean end-of-stream before any byte of the frame.
Status ReadAll(int fd, char* data, size_t size, bool* clean_eof) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (clean_eof != nullptr && got == 0) {
        *clean_eof = true;
        return Status::NotFound("connection closed");
      }
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

constexpr size_t kMaxFrameBytes = 16u << 20;  // 16 MiB: a PRINT of anything

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::Capacity("frame exceeds " +
                            std::to_string(kMaxFrameBytes) + " bytes");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(size & 0xff),
                    static_cast<char>((size >> 8) & 0xff),
                    static_cast<char>((size >> 16) & 0xff),
                    static_cast<char>((size >> 24) & 0xff)};
  SYSTOLIC_RETURN_NOT_OK(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd, bool* clean_eof) {
  char header[4];
  SYSTOLIC_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header), clean_eof));
  const uint32_t size = static_cast<uint32_t>(
      static_cast<unsigned char>(header[0]) |
      (static_cast<unsigned char>(header[1]) << 8) |
      (static_cast<unsigned char>(header[2]) << 16) |
      (static_cast<unsigned char>(header[3]) << 24));
  if (size > kMaxFrameBytes) {
    return Status::DataCorruption("frame length " + std::to_string(size) +
                                  " exceeds the protocol maximum");
  }
  std::string payload(size, '\0');
  if (size > 0) {
    SYSTOLIC_RETURN_NOT_OK(ReadAll(fd, payload.data(), size, nullptr));
  }
  return payload;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<Server>> Server::Create(ServerConfig config) {
  auto server = std::unique_ptr<Server>(new Server(std::move(config)));
  ServerConfig& cfg = server->config_;
  cfg.num_chips = std::max<size_t>(1, cfg.num_chips);
  if (cfg.num_chips > 1) {
    server->pool_ = std::make_shared<db::ChipPool>(cfg.num_chips);
  }
  cfg.machine.device.num_chips = cfg.num_chips;
  cfg.machine.shared_pool = server->pool_;
  if (cfg.durable_dir.empty()) {
    server->catalog_ = std::make_unique<SharedCatalog>();
  } else {
    SYSTOLIC_ASSIGN_OR_RETURN(server->catalog_,
                              SharedCatalog::Open(cfg.durable_dir));
  }
  const size_t concurrent = cfg.max_concurrent_plans == 0
                                ? cfg.num_chips
                                : cfg.max_concurrent_plans;
  server->scheduler_ =
      std::make_unique<FairScheduler>(concurrent, cfg.max_queued_plans);
  return server;
}

Server::~Server() {
  RequestShutdown();
  // Serve() joins its own threads; if it was never entered (embedded use or
  // shutdown raced the accept loop), join what remains here.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(connection_threads_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

Result<std::shared_ptr<Session>> Server::Connect() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= config_.max_sessions) {
    ++sessions_rejected_;
    return Status::Capacity("server is full: " +
                            std::to_string(sessions_.size()) +
                            " active sessions (limit " +
                            std::to_string(config_.max_sessions) + ")");
  }
  const uint64_t id = next_session_id_++;
  auto session = std::make_shared<Session>(id, catalog_.get(),
                                           scheduler_.get(), config_.machine);
  sessions_.emplace(id, session);
  ++sessions_admitted_;
  return session;
}

void Server::Disconnect(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(session_id);
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.sessions_admitted = sessions_admitted_;
    stats.sessions_rejected = sessions_rejected_;
    stats.active_sessions = sessions_.size();
  }
  stats.scheduler = scheduler_->stats();
  stats.group_commit = catalog_->stats();
  return stats;
}

Status Server::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status Server::Serve() {
  int listen_fd;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ < 0) {
      return Status::InvalidArgument("Serve before Listen");
    }
    listen_fd = listen_fd_;
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by RequestShutdown (or a hard error)
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
  // Drain: unblock every connection, then join.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connection_fds_) ::close(fd);
    connection_fds_.clear();
  }
  return Status::OK();
}

void Server::RequestShutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_ = true;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::HandleConnection(int fd) {
  std::shared_ptr<Session> session;
  {
    Result<std::shared_ptr<Session>> connected = Connect();
    if (!connected.ok()) {
      // Best-effort refusal; the admission verdict is the payload.
      (void)WriteFrame(fd, "ERR " + connected.status().ToString() + "\n");
      return;
    }
    session = std::move(connected).ValueOrDie();
  }
  for (;;) {
    bool clean_eof = false;
    Result<std::string> line = ReadFrame(fd, &clean_eof);
    if (!line.ok()) break;  // disconnect (clean or torn) ends the session
    if (*line == "SHUTDOWN") {
      (void)WriteFrame(fd, "OK\n-- server stopping\n");
      RequestShutdown();
      break;
    }
    const Result<std::string> output = session->Execute(*line);
    std::string payload;
    if (output.ok()) {
      payload = "OK\n" + *output;
    } else {
      payload = "ERR " + output.status().ToString() + "\n" +
                session->last_output();
    }
    if (!WriteFrame(fd, payload).ok()) break;
  }
  Disconnect(session->id());
}

// ---- Client --------------------------------------------------------------

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Result<Client::Reply> Client::Roundtrip(const std::string& line) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  SYSTOLIC_RETURN_NOT_OK(WriteFrame(fd_, line));
  SYSTOLIC_ASSIGN_OR_RETURN(const std::string payload,
                            ReadFrame(fd_, nullptr));
  const size_t newline = payload.find('\n');
  const std::string verdict =
      newline == std::string::npos ? payload : payload.substr(0, newline);
  Reply reply;
  reply.output =
      newline == std::string::npos ? "" : payload.substr(newline + 1);
  if (verdict == "OK") {
    reply.ok = true;
  } else if (verdict.rfind("ERR ", 0) == 0) {
    reply.error = verdict.substr(4);
  } else {
    return Status::DataCorruption("malformed reply verdict '" + verdict +
                                  "'");
  }
  return reply;
}

}  // namespace server
}  // namespace systolic
