#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/strings.h"

namespace systolic {
namespace server {

namespace {

/// config knob -> Wire timeout argument (<= 0 disables the deadline).
int BudgetMs(int configured) { return configured > 0 ? configured : -1; }

std::chrono::steady_clock::time_point Now() {
  return std::chrono::steady_clock::now();
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<Server>> Server::Create(ServerConfig config) {
  auto server = std::unique_ptr<Server>(new Server(std::move(config)));
  ServerConfig& cfg = server->config_;
  cfg.num_chips = std::max<size_t>(1, cfg.num_chips);
  if (cfg.num_chips > 1) {
    server->pool_ = std::make_shared<db::ChipPool>(cfg.num_chips);
  }
  cfg.machine.device.num_chips = cfg.num_chips;
  cfg.machine.shared_pool = server->pool_;
  if (cfg.durable_dir.empty()) {
    server->catalog_ = std::make_unique<SharedCatalog>();
  } else {
    SYSTOLIC_ASSIGN_OR_RETURN(
        server->catalog_, SharedCatalog::Open(cfg.durable_dir, cfg.durable_io));
  }
  const size_t concurrent = cfg.max_concurrent_plans == 0
                                ? cfg.num_chips
                                : cfg.max_concurrent_plans;
  server->scheduler_ =
      std::make_unique<FairScheduler>(concurrent, cfg.max_queued_plans);
  return server;
}

Server::~Server() {
  RequestShutdown();
  // Serve() joins its own threads; if it was never entered (embedded use or
  // shutdown raced the accept loop), join what remains here.
  std::vector<std::thread> threads;
  {
    util::MutexLock lock(&mutex_);
    threads.swap(connection_threads_);
    reaper_stop_ = true;
  }
  reaper_cv_.NotifyAll();
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  if (reaper_.joinable()) reaper_.join();
}

std::string Server::MintTokenLocked() {
  for (;;) {
    std::string token = "b" + std::to_string(config_.boot_id) + "-s" +
                        std::to_string(token_nonce_++);
    uint64_t acked = 0;
    uint64_t records = 0;
    // Never collide with a live token or one the WAL remembers: a recovered
    // token still keys a crashed client's dedup claim.
    if (tokens_.count(token) == 0 &&
        !catalog_->RecoveredAckFor(token, &acked, &records)) {
      return token;
    }
  }
}

Result<std::shared_ptr<Session>> Server::AdmitLocked(bool network) {
  if (slots_.size() >= config_.max_sessions) {
    ++sessions_rejected_;
    return Status::Capacity(
        "server is full: " + std::to_string(slots_.size()) +
        " active sessions (limit " + std::to_string(config_.max_sessions) +
        ")");
  }
  const uint64_t id = next_session_id_++;
  auto session = std::make_shared<Session>(id, catalog_.get(),
                                           scheduler_.get(), config_.machine);
  session->set_token(MintTokenLocked());
  Slot slot;
  slot.session = session;
  slot.network = network;
  slot.last_active = Now();
  slots_.emplace(id, std::move(slot));
  tokens_[session->token()] = id;
  ++sessions_admitted_;
  return session;
}

Result<std::shared_ptr<Session>> Server::Connect() {
  util::MutexLock lock(&mutex_);
  return AdmitLocked(/*network=*/false);
}

Result<std::shared_ptr<Session>> Server::Resume(const std::string& token) {
  util::MutexLock lock(&mutex_);
  const auto tok = tokens_.find(token);
  if (tok != tokens_.end()) {
    const auto slot = slots_.find(tok->second);
    if (slot != slots_.end()) {
      ++sessions_resumed_;
      return slot->second.session;
    }
  }
  uint64_t acked = 0;
  uint64_t records = 0;
  if (catalog_->RecoveredAckFor(token, &acked, &records)) {
    SYSTOLIC_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                              AdmitLocked(/*network=*/false));
    tokens_.erase(session->token());
    session->set_token(token);
    tokens_[token] = session->id();
    session->AdoptRecoveredAck(acked, records);
    ++sessions_resumed_;
    return session;
  }
  return Status::NotFound("unknown session token '" + token +
                          "' (expired, reaped, or never issued)");
}

void Server::Disconnect(uint64_t session_id) {
  util::MutexLock lock(&mutex_);
  const auto it = slots_.find(session_id);
  if (it == slots_.end()) return;
  tokens_.erase(it->second.session->token());
  slots_.erase(it);
  slots_cv_.NotifyAll();
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    util::MutexLock lock(&mutex_);
    stats.sessions_admitted = sessions_admitted_;
    stats.sessions_rejected = sessions_rejected_;
    stats.active_sessions = slots_.size();
    stats.sessions_resumed = sessions_resumed_;
    stats.sessions_reaped = sessions_reaped_;
    stats.accept_retries = accept_retries_;
    stats.replies_from_cache = replies_from_cache_;
    stats.recovered_dedups = recovered_dedups_;
    stats.oversize_replies = oversize_replies_;
  }
  stats.scheduler = scheduler_->stats();
  stats.group_commit = catalog_->stats();
  return stats;
}

Status Server::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + ErrnoString(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IOError(std::string("bind: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + ErrnoString(errno));
    ::close(fd);
    return status;
  }
  util::MutexLock lock(&mutex_);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status Server::Serve() {
  int listen_fd;
  {
    util::MutexLock lock(&mutex_);
    if (listen_fd_ < 0) {
      return Status::InvalidArgument("Serve before Listen");
    }
    listen_fd = listen_fd_;
    reaper_stop_ = false;
  }
  if (config_.idle_timeout_ms > 0) {
    reaper_ = std::thread([this] { ReaperLoop(); });
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        // Transient: an aborted handshake or fd exhaustion must not kill the
        // accept loop permanently — back off briefly and keep serving.
        bool stopping;
        {
          util::MutexLock lock(&mutex_);
          stopping = shutdown_ || draining_;
          if (!stopping) ++accept_retries_;
        }
        if (stopping) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      break;  // listener closed by RequestShutdown/RequestDrain, or fatal
    }
    util::MutexLock lock(&mutex_);
    if (shutdown_ || draining_) {
      ::close(fd);
      break;
    }
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
  bool drain;
  {
    util::MutexLock lock(&mutex_);
    drain = draining_ && !shutdown_;
    if (!drain) {
      // Hard stop: tear every connection down; handlers unblock and exit.
      for (auto& [id, wire] : live_wires_) wire->ShutdownBoth();
    }
    // Drain: RequestDrain already unblocked idle connections and marked busy
    // ones close_after_reply; handlers finish their in-flight command, write
    // the reply, and exit on their own.
  }
  std::vector<std::thread> threads;
  {
    util::MutexLock lock(&mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  {
    util::MutexLock lock(&mutex_);
    reaper_stop_ = true;
  }
  reaper_cv_.NotifyAll();
  if (reaper_.joinable()) reaper_.join();
  if (drain) {
    // Every handler has replied and returned; wait out the group-commit
    // leader so every acknowledged commit is fsync'd before Serve returns.
    catalog_->Quiesce();
  }
  return Status::OK();
}

void Server::RequestShutdown() {
  util::MutexLock lock(&mutex_);
  shutdown_ = true;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, wire] : live_wires_) wire->ShutdownBoth();
  reaper_cv_.NotifyAll();
  slots_cv_.NotifyAll();
}

void Server::RequestDrain() {
  util::MutexLock lock(&mutex_);
  if (shutdown_ || draining_) return;
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, slot] : slots_) {
    if (!slot.attached) continue;
    slot.close_after_reply = true;
    // Idle connections are parked in ReadFrame: unblock them now. Busy ones
    // finish their admitted command and see close_after_reply at the reply.
    if (!slot.busy && slot.wire != nullptr) slot.wire->ShutdownBoth();
  }
  reaper_cv_.NotifyAll();
  slots_cv_.NotifyAll();
}

void Server::ReaperLoop() {
  const auto idle = std::chrono::milliseconds(config_.idle_timeout_ms);
  const auto tick =
      std::max(std::chrono::milliseconds(10),
               std::chrono::milliseconds(config_.idle_timeout_ms / 4));
  util::MutexLock lock(&mutex_);
  while (!reaper_stop_) {
    // Pacing sleep guarded by the loop predicate: timeout and notify both
    // fall through to a sweep (idempotent; a drain/shutdown notify just
    // sweeps early), and reaper_stop_ is re-checked under mutex_ before
    // every sleep, so a stop can never be missed.
    (void)reaper_cv_.WaitFor(&mutex_, tick);
    if (reaper_stop_) break;
    const auto now = Now();
    for (auto it = slots_.begin(); it != slots_.end();) {
      Slot& slot = it->second;
      // Only detached NETWORK sessions: embedded sessions are driven by
      // caller threads on their own schedule, and attached ones are covered
      // by the connection's own idle deadline.
      if (slot.network && !slot.attached && now - slot.last_active >= idle) {
        tokens_.erase(slot.session->token());
        it = slots_.erase(it);
        ++sessions_reaped_;
      } else {
        ++it;
      }
    }
  }
}

Status Server::WriteReply(Wire& wire, const std::string& payload) {
  const int io = BudgetMs(config_.io_timeout_ms);
  const size_t limit = config_.max_reply_bytes == 0
                           ? kMaxFrameBytes
                           : std::min(config_.max_reply_bytes, kMaxFrameBytes);
  if (payload.size() <= limit) {
    Status wrote = WriteFrame(wire, payload, io);
    if (!wrote.IsCapacity()) return wrote;
  }
  // An oversized reply (a PRINT bigger than the frame limit) must not
  // silently kill the connection: substitute a well-formed truncated ERR
  // carrying a prefix of the output.
  {
    util::MutexLock lock(&mutex_);
    ++oversize_replies_;
  }
  const size_t nl = payload.find('\n');
  std::string body =
      nl == std::string::npos ? "" : payload.substr(nl + 1, 4096);
  if (!body.empty() && body.back() != '\n') body += '\n';
  std::string err =
      "ERR " +
      Status::Capacity("reply of " + std::to_string(payload.size()) +
                       " bytes exceeds the " + std::to_string(limit) +
                       "-byte frame limit; output truncated")
          .ToString() +
      "\n" + body + "-- output truncated to the first 4096 bytes\n";
  return WriteFrame(wire, err, io);
}

void Server::HandleConnection(int fd) {
  PosixWire wire(fd);
  uint64_t wire_id;
  {
    util::MutexLock lock(&mutex_);
    wire_id = next_wire_id_++;
    live_wires_[wire_id] = &wire;
  }
  bool clean_eof = false;
  Result<std::string> first =
      ReadFrame(wire, &clean_eof, BudgetMs(config_.idle_timeout_ms),
                BudgetMs(config_.io_timeout_ms));
  if (first.ok()) {
    std::string token;
    if (ParseHello(*first, &token)) {
      HandleV2(wire, token);
    } else {
      HandleV1(wire, std::move(*first));
    }
  } else if (first.status().IsDataCorruption()) {
    // Unframeable garbage: the stream cannot be resynchronised, but the
    // offender still gets a clean verdict before the close.
    (void)WriteFrame(wire, "ERR " + first.status().ToString() + "\n",
                     BudgetMs(config_.io_timeout_ms));
  }
  util::MutexLock lock(&mutex_);
  live_wires_.erase(wire_id);
}

void Server::HandleV1(Wire& wire, std::string line) {
  const int io = BudgetMs(config_.io_timeout_ms);
  std::shared_ptr<Session> session;
  {
    util::MutexLock lock(&mutex_);
    Result<std::shared_ptr<Session>> connected = AdmitLocked(/*network=*/true);
    if (!connected.ok()) {
      lock.Unlock();
      // Best-effort refusal; the admission verdict is the payload.
      (void)WriteFrame(wire, "ERR " + connected.status().ToString() + "\n",
                       io);
      return;
    }
    session = std::move(connected).ValueOrDie();
    Slot& slot = slots_[session->id()];
    slot.attached = true;
    slot.wire = &wire;
  }
  const uint64_t sid = session->id();
  for (;;) {
    if (line == "SHUTDOWN") {
      (void)WriteFrame(wire, "OK\n-- server stopping\n", io);
      RequestShutdown();
      break;
    }
    if (line == "DRAIN") {
      (void)WriteFrame(wire, "OK\n-- server draining\n", io);
      RequestDrain();
      break;
    }
    {
      util::MutexLock lock(&mutex_);
      const auto it = slots_.find(sid);
      if (it != slots_.end()) {
        it->second.busy = true;
        it->second.last_active = Now();
      }
    }
    const Result<std::string> output = session->Execute(line);
    std::string payload;
    if (output.ok()) {
      payload = "OK\n" + *output;
    } else {
      payload = "ERR " + output.status().ToString() + "\n" +
                session->last_output();
    }
    bool close_now = false;
    {
      util::MutexLock lock(&mutex_);
      const auto it = slots_.find(sid);
      if (it != slots_.end()) {
        it->second.busy = false;
        it->second.last_active = Now();
        close_now = it->second.close_after_reply;
      }
    }
    slots_cv_.NotifyAll();
    if (!WriteReply(wire, payload).ok()) break;
    if (close_now) break;
    bool clean_eof = false;
    Result<std::string> next =
        ReadFrame(wire, &clean_eof, BudgetMs(config_.idle_timeout_ms), io);
    if (!next.ok()) {
      if (next.status().IsDataCorruption()) {
        (void)WriteFrame(wire, "ERR " + next.status().ToString() + "\n", io);
      }
      if (IsWireTimeout(next.status())) {
        util::MutexLock lock(&mutex_);
        ++sessions_reaped_;
      }
      break;
    }
    line = std::move(*next);
  }
  Disconnect(sid);  // v1 sessions die with their connection
}

Result<std::shared_ptr<Session>> Server::AttachV2(const std::string& token,
                                                  Wire* wire) {
  for (;;) {
    if (shutdown_ || draining_) {
      return Status::Unavailable("server is stopping");
    }
    if (token.empty()) break;  // fresh admission below
    const auto tok = tokens_.find(token);
    if (tok == tokens_.end()) {
      uint64_t acked = 0;
      uint64_t records = 0;
      if (catalog_->RecoveredAckFor(token, &acked, &records)) {
        // The session died with the previous incarnation, but its commits'
        // acks survived in the WAL: resume into a fresh session primed to
        // deduplicate any retried committed request.
        SYSTOLIC_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                                  AdmitLocked(/*network=*/true));
        tokens_.erase(session->token());
        session->set_token(token);
        tokens_[token] = session->id();
        session->AdoptRecoveredAck(acked, records);
        Slot& slot = slots_[session->id()];
        slot.attached = true;
        slot.wire = wire;
        slot.last_active = Now();
        ++sessions_resumed_;
        return session;
      }
      return Status::NotFound("unknown session token '" + token +
                              "' (expired, reaped, or never issued)");
    }
    const auto it = slots_.find(tok->second);
    if (it == slots_.end()) continue;
    Slot& slot = it->second;
    if (!slot.attached) {
      slot.attached = true;
      slot.network = true;
      slot.wire = wire;
      slot.last_active = Now();
      ++sessions_resumed_;
      return slot.session;
    }
    // Steal: the token holder reconnected (its old connection is dead or
    // dying). Tear the old attachment down and wait for its handler to
    // finish any in-flight command and detach — the reply lands in the cache
    // for the retry. Predicate-guarded: sleep only while the stolen slot is
    // still attached; a spurious wakeup re-checks and goes back to sleep
    // instead of racing the old handler for the slot.
    slot.close_after_reply = true;
    if (slot.wire != nullptr) slot.wire->ShutdownBoth();
    while (!shutdown_ && !draining_) {
      const auto t = tokens_.find(token);
      if (t == tokens_.end()) break;  // reaped/disconnected while we slept
      const auto s = slots_.find(t->second);
      if (s == slots_.end() || !s->second.attached) break;
      slots_cv_.Wait(&mutex_);
    }
    // Loop back and re-evaluate from scratch: the slot may have detached,
    // vanished entirely, or the server may be stopping.
  }
  SYSTOLIC_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            AdmitLocked(/*network=*/true));
  Slot& slot = slots_[session->id()];
  slot.attached = true;
  slot.wire = wire;
  slot.last_active = Now();
  return session;
}

void Server::ReleaseV2(uint64_t session_id, bool disconnect) {
  util::MutexLock lock(&mutex_);
  const auto it = slots_.find(session_id);
  if (it != slots_.end()) {
    Slot& slot = it->second;
    slot.attached = false;
    slot.busy = false;
    slot.close_after_reply = false;
    slot.wire = nullptr;
    slot.last_active = Now();
    if (disconnect || shutdown_ || draining_) {
      tokens_.erase(slot.session->token());
      slots_.erase(it);
    }
  }
  slots_cv_.NotifyAll();
}

void Server::HandleV2(Wire& wire, const std::string& token) {
  const int io = BudgetMs(config_.io_timeout_ms);
  std::shared_ptr<Session> session;
  {
    util::MutexLock lock(&mutex_);
    Result<std::shared_ptr<Session>> attached = AttachV2(token, &wire);
    if (!attached.ok()) {
      const Status status = attached.status();
      lock.Unlock();
      // Admission pressure is retryable (same HELLO, later); everything else
      // (unknown token, stopping server) is a hard verdict.
      const char* verdict = status.IsCapacity() ? "RETRY " : "ERR ";
      (void)WriteFrame(wire, verdict + status.ToString() + "\n", io);
      return;
    }
    session = std::move(attached).ValueOrDie();
  }
  const uint64_t sid = session->id();
  if (!WriteReply(wire, "OK\ntoken " + session->token() + " last " +
                            std::to_string(session->last_request_id()) +
                            "\n")
           .ok()) {
    ReleaseV2(sid, /*disconnect=*/false);
    return;
  }
  bool disconnect = false;
  for (;;) {
    bool clean_eof = false;
    Result<std::string> frame =
        ReadFrame(wire, &clean_eof, BudgetMs(config_.idle_timeout_ms), io);
    if (!frame.ok()) {
      if (frame.status().IsDataCorruption()) {
        (void)WriteFrame(wire, "ERR " + frame.status().ToString() + "\n", io);
      }
      if (IsWireTimeout(frame.status())) {
        // Slow loris: the connection idled out. Free the admission slot now.
        util::MutexLock lock(&mutex_);
        ++sessions_reaped_;
        disconnect = true;
      }
      // A clean EOF without BYE or a torn stream both detach: the client may
      // be mid-reconnect and will resume by token.
      break;
    }
    if (*frame == "BYE") {
      (void)WriteReply(wire, "OK\n-- goodbye\n");
      disconnect = true;
      break;
    }
    if (*frame == "SHUTDOWN") {
      (void)WriteReply(wire, "OK\n-- server stopping\n");
      RequestShutdown();
      disconnect = true;
      break;
    }
    if (*frame == "DRAIN") {
      (void)WriteReply(wire, "OK\n-- server draining\n");
      RequestDrain();
      disconnect = true;
      break;
    }
    uint64_t id = 0;
    std::string line;
    if (!ParseRequest(*frame, &id, &line)) {
      (void)WriteReply(
          wire, "ERR " +
                    Status::InvalidArgument(
                        "malformed v2 frame (expected REQ <id>\\n<command>)")
                        .ToString() +
                    "\n");
      break;  // detach; a correct client can still resume
    }
    {
      util::MutexLock lock(&mutex_);
      const auto it = slots_.find(sid);
      if (it != slots_.end()) {
        it->second.busy = true;
        it->second.last_active = Now();
      }
    }
    Result<Session::RequestOutcome> outcome = session->ExecuteRequest(id, line);
    bool close_now = false;
    {
      util::MutexLock lock(&mutex_);
      const auto it = slots_.find(sid);
      if (it != slots_.end()) {
        it->second.busy = false;
        it->second.last_active = Now();
        close_now = it->second.close_after_reply;
      }
      if (outcome.ok() && outcome->from_cache) ++replies_from_cache_;
      if (outcome.ok() && outcome->recovered_dedup) ++recovered_dedups_;
    }
    slots_cv_.NotifyAll();
    if (!outcome.ok()) {
      // Protocol violation (non-monotonic id): verdict, then detach.
      (void)WriteReply(wire, "ERR " + outcome.status().ToString() + "\n");
      break;
    }
    if (!WriteReply(wire, outcome->payload).ok()) break;
    if (close_now) break;
  }
  ReleaseV2(sid, disconnect);
}

// ---- Client ----------------------------------------------------------------

Result<Client::Reply> ParseReplyPayload(const std::string& payload) {
  const size_t newline = payload.find('\n');
  const std::string verdict =
      newline == std::string::npos ? payload : payload.substr(0, newline);
  Client::Reply reply;
  reply.output =
      newline == std::string::npos ? "" : payload.substr(newline + 1);
  if (verdict == "OK") {
    reply.ok = true;
  } else if (verdict.rfind("ERR ", 0) == 0) {
    reply.error = verdict.substr(4);
  } else {
    return Status::DataCorruption("malformed reply verdict '" + verdict +
                                  "'");
  }
  return reply;
}

void Client::Close() { wire_.reset(); }

Result<Client> Client::Connect(uint16_t port) {
  SYSTOLIC_ASSIGN_OR_RETURN(std::unique_ptr<PosixWire> wire,
                            PosixWire::Dial(port));
  return Client(std::move(wire));
}

Result<Client::Reply> Client::Roundtrip(const std::string& line) {
  if (wire_ == nullptr) {
    return Status::InvalidArgument("client is not connected");
  }
  SYSTOLIC_RETURN_NOT_OK(WriteFrame(*wire_, line, io_timeout_ms_));
  SYSTOLIC_ASSIGN_OR_RETURN(
      const std::string payload,
      ReadFrame(*wire_, nullptr, io_timeout_ms_, io_timeout_ms_));
  return ParseReplyPayload(payload);
}

}  // namespace server
}  // namespace systolic
