#include "server/session.h"

#include <utility>
#include <vector>

namespace systolic {
namespace server {

Session::Session(uint64_t id, SharedCatalog* catalog,
                 FairScheduler* scheduler, machine::MachineConfig config)
    : id_(id),
      catalog_(catalog),
      scheduler_(scheduler),
      machine_(std::move(config)),
      interpreter_(&machine_, &out_) {
  // Durable commits leave the session through the shared pipeline; the
  // machine never owns a DurableCatalog of its own.
  machine_.set_commit_sink(
      [this](const std::vector<std::pair<std::string, const rel::Relation*>>&
                 puts) -> Result<size_t> {
        SYSTOLIC_ASSIGN_OR_RETURN(
            const SharedCatalog::CommitResult result,
            catalog_->CommitGroup(pinned_version_, puts));
        durability_stats_.wal_records += result.records;
        return result.records;
      });
  // Reads fault in lazily from the pinned image: a relation another session
  // committed is copied onto this session's disk unit only when (and each
  // time) a newer version of it is actually LOADed.
  machine_.set_disk_source(
      [this](const std::string& name) -> const rel::Relation* {
        if (pinned_ == nullptr) return nullptr;
        const auto entry = pinned_->relations.find(name);
        if (entry == pinned_->relations.end()) return nullptr;
        const auto mirrored = mirrored_.find(name);
        if (mirrored != mirrored_.end() &&
            mirrored->second == entry->second.relation) {
          return nullptr;  // the disk copy is current
        }
        mirrored_[name] = entry->second.relation;
        return entry->second.relation.get();
      });
  machine::SessionContext context;
  context.session_id = id_;
  context.isolation = "snapshot";
  context.queue_depth = [this] { return scheduler_->queue_depth(); };
  context.durability_stats = [this] { return durability_stats_; };
  interpreter_.set_session(std::move(context));
  RefreshSnapshot();
}

void Session::RefreshSnapshot() {
  std::shared_ptr<const CatalogImage> latest = catalog_->Snapshot();
  if (pinned_ != nullptr && latest->version == pinned_->version) return;
  // O(1): no data is copied here. The disk-source hook mirrors a relation
  // onto the private disk unit only when a LOAD actually reads it.
  pinned_ = std::move(latest);
  pinned_version_ = pinned_->version;
}

Result<std::string> Session::Execute(const std::string& line) {
  // Freeze the snapshot across an open transaction: BEGIN..COMMIT reads are
  // repeatable and COMMIT conflict-checks against what was actually read.
  if (!interpreter_.in_transaction()) RefreshSnapshot();
  SYSTOLIC_ASSIGN_OR_RETURN(const AdmissionTicket ticket,
                            scheduler_->Admit(id_));
  out_.str("");
  const Status status = interpreter_.Execute(line);
  last_output_ = out_.str();
  SYSTOLIC_RETURN_NOT_OK(status);
  return last_output_;
}

}  // namespace server
}  // namespace systolic
