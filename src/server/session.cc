#include "server/session.h"

#include <utility>
#include <vector>

namespace systolic {
namespace server {

Session::Session(uint64_t id, SharedCatalog* catalog,
                 FairScheduler* scheduler, machine::MachineConfig config)
    : id_(id),
      catalog_(catalog),
      scheduler_(scheduler),
      machine_(std::move(config)),
      interpreter_(&machine_, &out_) {
  // Durable commits leave the session through the shared pipeline; the
  // machine never owns a DurableCatalog of its own.
  machine_.set_commit_sink(
      [this](const std::vector<std::pair<std::string, const rel::Relation*>>&
                 puts) -> Result<size_t> {
        // Tag v2 requests so the WAL ack makes the dedup crash-safe; v1 and
        // embedded commits (current_request_id_ == 0) go untagged.
        CommitTag tag;
        if (current_request_id_ > 0) {
          tag.token = token_;
          tag.request_id = current_request_id_;
        }
        SYSTOLIC_ASSIGN_OR_RETURN(
            const SharedCatalog::CommitResult result,
            catalog_->CommitGroup(pinned_version_, puts, std::move(tag)));
        durability_stats_.wal_records += result.records;
        return result.records;
      });
  // Reads fault in lazily from the pinned image: a relation another session
  // committed is copied onto this session's disk unit only when (and each
  // time) a newer version of it is actually LOADed.
  machine_.set_disk_source(
      [this](const std::string& name) -> const rel::Relation* {
        if (pinned_ == nullptr) return nullptr;
        const auto entry = pinned_->relations.find(name);
        if (entry == pinned_->relations.end()) return nullptr;
        const auto mirrored = mirrored_.find(name);
        if (mirrored != mirrored_.end() &&
            mirrored->second == entry->second.relation) {
          return nullptr;  // the disk copy is current
        }
        mirrored_[name] = entry->second.relation;
        return entry->second.relation.get();
      });
  machine::SessionContext context;
  context.session_id = id_;
  context.isolation = "snapshot";
  context.queue_depth = [this] { return scheduler_->queue_depth(); };
  context.durability_stats = [this] { return durability_stats_; };
  interpreter_.set_session(std::move(context));
  RefreshSnapshot();
}

void Session::RefreshSnapshot() {
  std::shared_ptr<const CatalogImage> latest = catalog_->Snapshot();
  if (pinned_ != nullptr && latest->version == pinned_->version) return;
  // O(1): no data is copied here. The disk-source hook mirrors a relation
  // onto the private disk unit only when a LOAD actually reads it.
  pinned_ = std::move(latest);
  pinned_version_ = pinned_->version;
}

Status Session::RunAdmitted(const std::string& line) {
  out_.str("");
  const Status status = interpreter_.Execute(line);
  last_output_ = out_.str();
  return status;
}

Result<std::string> Session::Execute(const std::string& line) {
  // Freeze the snapshot across an open transaction: BEGIN..COMMIT reads are
  // repeatable and COMMIT conflict-checks against what was actually read.
  if (!interpreter_.in_transaction()) RefreshSnapshot();
  SYSTOLIC_ASSIGN_OR_RETURN(const AdmissionTicket ticket,
                            scheduler_->Admit(id_));
  SYSTOLIC_RETURN_NOT_OK(RunAdmitted(line));
  return last_output_;
}

void Session::AdoptRecoveredAck(uint64_t request_id, uint64_t records) {
  recovered_ack_id_ = request_id;
  recovered_ack_records_ = records;
  has_recovered_ack_ = true;
  accept_any_first_id_ = true;
  last_request_id_ = request_id;
}

Result<Session::RequestOutcome> Session::ExecuteRequest(
    uint64_t id, const std::string& line) {
  if (id == 0) {
    return Status::InvalidArgument("request ids start at 1");
  }
  RequestOutcome outcome;
  if (have_last_reply_ && id == last_request_id_) {
    // The retry contract: a resent id replays the exact cached bytes — even
    // an ERR reply, since re-execution could diverge from what the client
    // may already have partially observed.
    outcome.payload = last_reply_;
    outcome.from_cache = true;
    return outcome;
  }
  if (has_recovered_ack_ && id <= recovered_ack_id_) {
    // This id committed through the WAL before the crash that created this
    // resumed session; the commit must not re-execute (exactly-once).
    outcome.payload =
        "OK\n-- durability: request " + std::to_string(id) +
        " already committed before recovery (" +
        std::to_string(recovered_ack_records_) +
        " relation(s), deduplicated)\n";
    outcome.recovered_dedup = true;
    last_request_id_ = id;
    last_reply_ = outcome.payload;
    have_last_reply_ = true;
    accept_any_first_id_ = false;
    return outcome;
  }
  if (!accept_any_first_id_ && id != last_request_id_ + 1) {
    return Status::InvalidArgument(
        "request id " + std::to_string(id) + " is not monotonic (expected " +
        std::to_string(last_request_id_ + 1) + ")");
  }
  if (!interpreter_.in_transaction()) RefreshSnapshot();
  Result<AdmissionTicket> ticket = scheduler_->Admit(id_);
  if (!ticket.ok()) {
    // Admission bounced BEFORE any effect: the id is not consumed, and the
    // RETRY verdict tells the client to back off and resend the same id.
    outcome.payload = "RETRY " + ticket.status().ToString() + "\n";
    outcome.retryable = true;
    return outcome;
  }
  accept_any_first_id_ = false;
  current_request_id_ = id;
  const Status status = RunAdmitted(line);
  current_request_id_ = 0;
  if (status.ok()) {
    outcome.payload = "OK\n" + last_output_;
  } else {
    outcome.payload = "ERR " + status.ToString() + "\n" + last_output_;
  }
  last_request_id_ = id;
  last_reply_ = outcome.payload;
  have_last_reply_ = true;
  return outcome;
}

}  // namespace server
}  // namespace systolic
