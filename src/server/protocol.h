#ifndef SYSTOLIC_SERVER_PROTOCOL_H_
#define SYSTOLIC_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"

namespace systolic {
namespace server {

/// The S26 wire layer: the length-framed protocol ([u32 LE payload length]
/// [payload]) from S24, lifted onto a byte-stream abstraction (`Wire`) so the
/// chaos injector can sit between the framing code and the socket, plus the
/// protocol-v2 request codec that gives every command a per-session
/// monotonically increasing request id (the retry/dedup contract — see
/// DESIGN S26).
///
/// Protocol v2 frames (all plain text payloads):
///   client -> server  "HELLO v2"             new session
///   client -> server  "HELLO v2 <token>"     resume the named session
///   server -> client  "OK\ntoken <token> last <id>\n"
///   client -> server  "REQ <id>\n<command>"  execute exactly once
///   server -> client  "OK\n<output>" | "ERR <status>\n<output>"
///                     | "RETRY <status>\n"   pre-execution bounce: the
///                                            request was NOT consumed; back
///                                            off and resend the SAME id
///   client -> server  "BYE"                  clean end of session
///   client -> server  "DRAIN" | "SHUTDOWN"   server-wide control
/// A first frame that is not HELLO runs the legacy v1 contract (each frame is
/// one bare command line) so old clients keep working.

/// Upper bound for one frame payload; a PRINT of anything fits.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// A duplex byte stream. `timeout_ms` bounds ONE poll-guarded operation:
/// negative = block indefinitely, 0 = must be ready now. Short reads/writes
/// are normal; the framing helpers loop.
class Wire {
 public:
  virtual ~Wire() = default;

  /// Sends at least 1 byte (short sends allowed); IOError on a broken or
  /// timed-out stream.
  virtual Result<size_t> Send(const char* data, size_t size,
                              int timeout_ms) = 0;

  /// Receives up to `size` bytes; 0 = clean end of stream.
  virtual Result<size_t> Recv(char* data, size_t size, int timeout_ms) = 0;

  /// Unblocks any peer thread parked in Send/Recv (both directions die).
  virtual void ShutdownBoth() = 0;

  virtual void Close() = 0;
};

/// `Wire` over a connected socket, nonblocking + poll so every operation can
/// carry a deadline (the S26 slow-loris defence on the server and the reply
/// deadline on the client).
class PosixWire final : public Wire {
 public:
  /// Takes ownership of a connected `fd` (sets O_NONBLOCK).
  explicit PosixWire(int fd);
  ~PosixWire() override;
  PosixWire(const PosixWire&) = delete;
  PosixWire& operator=(const PosixWire&) = delete;

  /// Connects to 127.0.0.1:`port`.
  static Result<std::unique_ptr<PosixWire>> Dial(uint16_t port);

  Result<size_t> Send(const char* data, size_t size, int timeout_ms) override;
  Result<size_t> Recv(char* data, size_t size, int timeout_ms) override;
  void ShutdownBoth() override;
  void Close() override;

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// True iff `status` is a Wire deadline expiry (as opposed to a broken
/// stream): retryable for clients, a reap verdict for the server.
bool IsWireTimeout(const Status& status);

/// Frames `payload` onto the wire. Capacity (before any byte is sent) when
/// the payload exceeds kMaxFrameBytes — the caller can substitute a
/// truncated reply; IOError on a broken/timed-out stream.
Status WriteFrame(Wire& wire, const std::string& payload, int timeout_ms = -1);

/// Reads one frame. `first_byte_timeout_ms` bounds the idle wait for the
/// frame to START (the server's idle budget); `timeout_ms` bounds each
/// subsequent poll once bytes are flowing (the io budget). NotFound with
/// `*clean_eof = true` = the stream ended cleanly between frames;
/// DataCorruption = over-limit length (the connection is unusable: the
/// stream cannot be resynchronised).
Result<std::string> ReadFrame(Wire& wire, bool* clean_eof,
                              int first_byte_timeout_ms = -1,
                              int timeout_ms = -1);

// ---- protocol v2 codec ----------------------------------------------------

inline constexpr char kHelloMagic[] = "HELLO v2";

/// "HELLO v2" (empty token = new session) or "HELLO v2 <token>".
std::string EncodeHello(const std::string& token);

/// Parses a HELLO payload; false when `payload` is not a HELLO at all
/// (legacy v1 client). A HELLO with a malformed tail yields an empty token.
bool ParseHello(const std::string& payload, std::string* token);

/// "REQ <id>\n<command>".
std::string EncodeRequest(uint64_t id, const std::string& line);

/// Parses a request frame; false when `payload` is not "REQ ..."-shaped
/// (control line or legacy command).
bool ParseRequest(const std::string& payload, uint64_t* id,
                  std::string* line);

/// Deterministic capped exponential backoff with seeded jitter: attempt 0
/// waits ~base_ms, each attempt doubles, capped at cap_ms; the jitter
/// multiplies by [0.5, 1.0] keyed on (seed, attempt) so retry storms from
/// concurrent clients decorrelate reproducibly.
uint64_t BackoffDelayMs(uint64_t seed, uint64_t attempt, uint64_t base_ms,
                        uint64_t cap_ms);

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_PROTOCOL_H_
