#include "server/chaos.h"

#include <algorithm>
#include <utility>

#include "faults/fault_plan.h"

namespace systolic {
namespace server {

uint64_t ChaosPlan::CutFor(uint64_t attempt) const {
  if (attempt >= max_cuts_) return kNoCut;
  // Keyed like CrashPlan::CutFor (crash_plan.h): an independent salt, the
  // attempt folded in, reduced over [0, horizon] so sweeps hit every byte
  // boundary including "cut before the first byte".
  const uint64_t key = faults::MixFaultKey(
      faults::MixFaultKey(seed_ ^ 0x70c5'0c4aULL) ^ attempt);
  return key % (horizon_ + 1);
}

ChaosWire::ChaosWire(std::unique_ptr<Wire> inner, uint64_t budget,
                     size_t max_chunk)
    : inner_(std::move(inner)),
      budget_(budget),
      max_chunk_(std::max<size_t>(1, max_chunk)) {}

Status ChaosWire::Admit(size_t* size) {
  if (tripped_) {
    return Status::IOError("chaos: connection reset by injector");
  }
  if (budget_ != ChaosPlan::kNoCut && admitted_ >= budget_) {
    tripped_ = true;
    // Reset, not FIN: the peer's next read/write dies mid-frame exactly like
    // a torn TCP connection.
    inner_->ShutdownBoth();
    return Status::IOError("chaos: connection reset by injector");
  }
  *size = std::min(*size, max_chunk_);
  if (budget_ != ChaosPlan::kNoCut) {
    *size = std::min<uint64_t>(*size, budget_ - admitted_);
  }
  return Status::OK();
}

Result<size_t> ChaosWire::Send(const char* data, size_t size, int timeout_ms) {
  SYSTOLIC_RETURN_NOT_OK(Admit(&size));
  SYSTOLIC_ASSIGN_OR_RETURN(const size_t n,
                            inner_->Send(data, size, timeout_ms));
  admitted_ += n;
  return n;
}

Result<size_t> ChaosWire::Recv(char* data, size_t size, int timeout_ms) {
  SYSTOLIC_RETURN_NOT_OK(Admit(&size));
  SYSTOLIC_ASSIGN_OR_RETURN(const size_t n,
                            inner_->Recv(data, size, timeout_ms));
  admitted_ += n;
  return n;
}

void ChaosWire::ShutdownBoth() { inner_->ShutdownBoth(); }

void ChaosWire::Close() { inner_->Close(); }

}  // namespace server
}  // namespace systolic
