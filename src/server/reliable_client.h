#ifndef SYSTOLIC_SERVER_RELIABLE_CLIENT_H_
#define SYSTOLIC_SERVER_RELIABLE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "server/protocol.h"
#include "server/server.h"

namespace systolic {
namespace server {

/// Knobs for ReliableClient. The `dial` and `sleep_ms` hooks exist so tests
/// can splice a ChaosWire under the client and collapse backoff waits to
/// nothing; production use leaves them null and gets a real loopback dial and
/// a real sleep.
struct ReliableClientOptions {
  /// Loopback port (ignored when `dial` is set).
  uint16_t port = 0;
  /// Per-poll send/recv budget; <= 0 = block indefinitely.
  int io_timeout_ms = 10'000;
  /// Total tries per request (first attempt included).
  size_t max_attempts = 10;
  uint64_t backoff_base_ms = 1;
  uint64_t backoff_cap_ms = 64;
  /// Decorrelates concurrent clients' retry storms (see BackoffDelayMs).
  uint64_t backoff_seed = 0;
  /// Produces a fresh connected Wire; defaults to PosixWire::Dial(port).
  std::function<Result<std::unique_ptr<Wire>>()> dial;
  /// Backoff sleep; defaults to std::this_thread::sleep_for.
  std::function<void(uint64_t)> sleep_ms;
};

/// The S26 protocol-v2 client: every command carries a per-session
/// monotonically increasing request id, and every transient failure — torn
/// connection, wire deadline, server admission pressure (RETRY verdict or
/// Capacity), Unavailable — is retried with capped exponential backoff by
/// reconnecting, resuming the session by token, and resending the SAME id.
/// The server's reply cache / WAL-recovered acks make the retry exactly-once:
/// a command's effects are applied at most once no matter how many times its
/// frame hits the wire. DataCorruption (a malformed reply) and protocol
/// errors are fatal, never retried.
class ReliableClient {
 public:
  struct Stats {
    size_t dials = 0;     ///< Wire connections established (incl. the first).
    size_t retries = 0;   ///< Request attempts beyond each first attempt.
    size_t backoffs = 0;  ///< Backoff delays taken.
    size_t retry_bounces = 0;  ///< RETRY verdicts (admission pressure).
  };

  ReliableClient() = default;
  ReliableClient(ReliableClient&&) noexcept = default;
  ReliableClient& operator=(ReliableClient&&) noexcept = default;
  ReliableClient(const ReliableClient&) = delete;
  ReliableClient& operator=(const ReliableClient&) = delete;

  /// Dials and performs the HELLO handshake (retrying transient failures);
  /// on success token() names the server-side session. Set
  /// `options.resume_token` via the second overload to re-attach.
  static Result<ReliableClient> Connect(ReliableClientOptions options);
  /// Like Connect, but resumes the session named by `token` (after a process
  /// restart or across a server crash with a durable directory).
  static Result<ReliableClient> Connect(ReliableClientOptions options,
                                        std::string token);

  /// Executes `line` exactly once on the server, retrying transparently.
  /// A returned Reply is the server's verdict for THIS request id (possibly
  /// replayed from its reply cache after a retry).
  Result<Client::Reply> Execute(const std::string& line);

  /// Graceful server stop: stop accepting, finish in-flight, flush group
  /// commit, close. OK once the DRAIN frame is on the wire (the ack may be
  /// lost to the shutdown itself).
  Status Drain();

  /// Hard server stop.
  Status Shutdown();

  /// Polite goodbye (BYE) and drop the connection; the server frees the
  /// session immediately instead of waiting for the idle reaper.
  void Close();

  /// The server-issued resume token (empty before Connect succeeds).
  const std::string& token() const { return token_; }

  /// The server's last-consumed request id reported at the last HELLO.
  uint64_t server_last_id() const { return server_last_id_; }

  /// The next id Execute will use.
  uint64_t next_id() const { return next_id_; }
  /// Overrides the id sequence (crash-recovery flows: continue above a
  /// recovered high-water mark).
  void set_next_id(uint64_t id) { next_id_ = id; }

  const Stats& stats() const { return stats_; }

 private:
  /// Dial + HELLO handshake if not connected. Transient failures surface as
  /// IOError/Capacity/Unavailable (caller retries); an unknown-token refusal
  /// is NotFound (fatal: the session is gone, start a new one).
  Status EnsureConnected();
  void DropWire();
  void Backoff(uint64_t attempt);
  /// Fire one control frame (BYE/DRAIN/SHUTDOWN), tolerating a lost ack.
  Status Control(const std::string& line);

  ReliableClientOptions options_;
  std::unique_ptr<Wire> wire_;
  std::string token_;
  uint64_t server_last_id_ = 0;
  uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_RELIABLE_CLIENT_H_
