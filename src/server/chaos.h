#ifndef SYSTOLIC_SERVER_CHAOS_H_
#define SYSTOLIC_SERVER_CHAOS_H_

#include <cstdint>
#include <memory>

#include "server/protocol.h"

namespace systolic {
namespace server {

/// Seeded network-chaos injection (DESIGN S26), mirroring the S21
/// CrashInjector's ordered-prefix cut model at the socket layer: a client's
/// traffic (sends and receives interleaved, in the order the client observes
/// them) is a deterministic byte stream, and a chaos plan cuts it after a
/// chosen byte count — tearing frames mid-header, mid-length, or mid-payload
/// depending on where the budget lands. Fragmentation (few bytes per
/// operation) stands in for network delay/coalescing, forcing every partial
/// read/write path in the framing code.

/// Per-connection-attempt cut schedule. Attempt `a`'s budget is keyed like
/// CrashPlan::CutFor — MixFaultKey(MixFaultKey(seed ^ salt) ^ a) over
/// [0, horizon] — so a seed sweep covers every byte boundary of the
/// protocol. After `max_cuts` attempts the plan stops cutting, so a retrying
/// client always terminates.
class ChaosPlan {
 public:
  static constexpr uint64_t kNoCut = UINT64_MAX;

  /// `horizon_bytes` should be the probed traffic volume of a clean run (the
  /// probe-then-sweep pattern from the crash fuzzer).
  ChaosPlan(uint64_t seed, uint64_t horizon_bytes, uint64_t max_cuts = 4)
      : seed_(seed), horizon_(horizon_bytes), max_cuts_(max_cuts) {}

  /// Byte budget before the cut for connection attempt `attempt` (0-based);
  /// kNoCut = the attempt survives.
  uint64_t CutFor(uint64_t attempt) const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  uint64_t horizon_;
  uint64_t max_cuts_;
};

/// A Wire that injects chaos into an inner wire. Counts every byte admitted
/// in either direction against the attempt's budget; when the budget runs
/// out the inner wire is reset (both directions shut down) and every further
/// operation fails with a connection-reset IOError — exactly what a torn
/// TCP connection looks like to the framing layer. Fragmentation caps each
/// operation at `max_chunk` bytes.
class ChaosWire final : public Wire {
 public:
  /// `budget` from ChaosPlan::CutFor; ChaosPlan::kNoCut = never cut.
  ChaosWire(std::unique_ptr<Wire> inner, uint64_t budget,
            size_t max_chunk = 3);

  Result<size_t> Send(const char* data, size_t size, int timeout_ms) override;
  Result<size_t> Recv(char* data, size_t size, int timeout_ms) override;
  void ShutdownBoth() override;
  void Close() override;

  /// Bytes admitted so far (both directions) — the probe leg reads this to
  /// size the sweep horizon.
  uint64_t bytes_admitted() const { return admitted_; }
  bool tripped() const { return tripped_; }

 private:
  /// IOError("chaos: ...") once the budget is exhausted; trips the wire.
  Status Admit(size_t* size);

  std::unique_ptr<Wire> inner_;
  uint64_t budget_;
  size_t max_chunk_;
  uint64_t admitted_ = 0;
  bool tripped_ = false;
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_CHAOS_H_
