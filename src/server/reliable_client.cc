#include "server/reliable_client.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

namespace systolic {
namespace server {

namespace {

/// Transient verdicts worth a reconnect + resend; everything else is fatal.
bool IsTransient(const Status& status) {
  return status.IsIOError() || status.IsCapacity() || status.IsUnavailable();
}

}  // namespace

Result<ReliableClient> ReliableClient::Connect(ReliableClientOptions options) {
  return Connect(std::move(options), std::string());
}

Result<ReliableClient> ReliableClient::Connect(ReliableClientOptions options,
                                               std::string token) {
  ReliableClient client;
  if (!options.dial) {
    const uint16_t port = options.port;
    options.dial = [port]() -> Result<std::unique_ptr<Wire>> {
      SYSTOLIC_ASSIGN_OR_RETURN(std::unique_ptr<PosixWire> wire,
                                PosixWire::Dial(port));
      return std::unique_ptr<Wire>(std::move(wire));
    };
  }
  if (!options.sleep_ms) {
    options.sleep_ms = [](uint64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  client.options_ = std::move(options);
  client.token_ = std::move(token);
  Status last = Status::OK();
  for (size_t attempt = 0; attempt < client.options_.max_attempts; ++attempt) {
    if (attempt > 0) client.Backoff(attempt - 1);
    last = client.EnsureConnected();
    if (last.ok()) return client;
    client.DropWire();
    if (!IsTransient(last)) return last;
  }
  return Status::Unavailable("HELLO failed after " +
                             std::to_string(client.options_.max_attempts) +
                             " attempts: " + last.ToString());
}

void ReliableClient::DropWire() { wire_.reset(); }

void ReliableClient::Backoff(uint64_t attempt) {
  ++stats_.backoffs;
  const uint64_t ms = BackoffDelayMs(options_.backoff_seed, attempt,
                                     options_.backoff_base_ms,
                                     options_.backoff_cap_ms);
  if (ms > 0) options_.sleep_ms(ms);
}

Status ReliableClient::EnsureConnected() {
  if (wire_ != nullptr) return Status::OK();
  SYSTOLIC_ASSIGN_OR_RETURN(std::unique_ptr<Wire> wire, options_.dial());
  ++stats_.dials;
  SYSTOLIC_RETURN_NOT_OK(
      WriteFrame(*wire, EncodeHello(token_), options_.io_timeout_ms));
  SYSTOLIC_ASSIGN_OR_RETURN(
      const std::string payload,
      ReadFrame(*wire, nullptr, options_.io_timeout_ms,
                options_.io_timeout_ms));
  if (payload.rfind("RETRY ", 0) == 0) {
    // Admission pressure before a session existed: retryable verbatim.
    ++stats_.retry_bounces;
    return Status::Capacity(payload.substr(6, payload.find('\n') - 6));
  }
  SYSTOLIC_ASSIGN_OR_RETURN(const Client::Reply reply,
                            ParseReplyPayload(payload));
  if (!reply.ok) {
    if (reply.error.find("unknown session token") != std::string::npos) {
      return Status::NotFound("server refused resume: " + reply.error);
    }
    if (reply.error.rfind("unavailable", 0) == 0) {
      return Status::Unavailable("server refused HELLO: " + reply.error);
    }
    return Status::Internal("server refused HELLO: " + reply.error);
  }
  // "token <token> last <id>"
  std::istringstream in(reply.output);
  std::string tag;
  std::string token;
  uint64_t last_id = 0;
  in >> tag >> token;
  if (tag != "token" || token.empty()) {
    return Status::DataCorruption("malformed HELLO ack '" + reply.output +
                                  "'");
  }
  in >> tag >> last_id;
  token_ = token;
  server_last_id_ = last_id;
  wire_ = std::move(wire);
  return Status::OK();
}

Result<Client::Reply> ReliableClient::Execute(const std::string& line) {
  const uint64_t id = next_id_++;
  const std::string frame = EncodeRequest(id, line);
  Status last = Status::OK();
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      Backoff(attempt - 1);
    }
    last = EnsureConnected();
    if (!last.ok()) {
      DropWire();
      if (!IsTransient(last)) return last;
      continue;
    }
    const Status sent = WriteFrame(*wire_, frame, options_.io_timeout_ms);
    if (!sent.ok()) {
      last = sent;
      DropWire();
      if (!IsTransient(sent)) return sent;
      continue;
    }
    Result<std::string> payload = ReadFrame(
        *wire_, nullptr, options_.io_timeout_ms, options_.io_timeout_ms);
    if (!payload.ok()) {
      last = payload.status();
      DropWire();
      // DataCorruption = an unframeable stream; the protocol offers no way
      // to resynchronise, so surface it rather than guess.
      if (!IsTransient(last)) return last;
      continue;
    }
    if (payload->rfind("RETRY ", 0) == 0) {
      // Pre-execution bounce: the id was NOT consumed. Same id, same
      // connection, after a backoff.
      ++stats_.retry_bounces;
      last = Status::Capacity(payload->substr(6, payload->find('\n') - 6));
      continue;
    }
    return ParseReplyPayload(*payload);
  }
  return Status::Unavailable("request " + std::to_string(id) +
                             " failed after " +
                             std::to_string(options_.max_attempts) +
                             " attempts: " + last.ToString());
}

Status ReliableClient::Control(const std::string& line) {
  SYSTOLIC_RETURN_NOT_OK(EnsureConnected());
  const Status sent = WriteFrame(*wire_, line, options_.io_timeout_ms);
  if (!sent.ok()) {
    DropWire();
    return sent;
  }
  // Best-effort ack: for DRAIN/SHUTDOWN the server may die before (or while)
  // replying, which is exactly what was asked for.
  Result<std::string> payload = ReadFrame(
      *wire_, nullptr, options_.io_timeout_ms, options_.io_timeout_ms);
  if (!payload.ok()) {
    DropWire();
    return Status::OK();
  }
  return Status::OK();
}

Status ReliableClient::Drain() { return Control("DRAIN"); }

Status ReliableClient::Shutdown() { return Control("SHUTDOWN"); }

void ReliableClient::Close() {
  if (wire_ != nullptr) {
    (void)Control("BYE");
  }
  DropWire();
}

}  // namespace server
}  // namespace systolic
