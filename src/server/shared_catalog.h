#ifndef SYSTOLIC_SERVER_SHARED_CATALOG_H_
#define SYSTOLIC_SERVER_SHARED_CATALOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "durability/durable_catalog.h"
#include "relational/relation.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace systolic {
namespace server {

/// One relation inside a snapshot image, tagged with the commit version that
/// last wrote it. First-committer-wins conflict detection compares this tag
/// against the committer's pinned snapshot version: a newer writer means the
/// committer raced someone on that relation name and must Abort.
struct ImageEntry {
  std::shared_ptr<const rel::Relation> relation;
  uint64_t writer_version = 0;
};

/// An immutable catalog image. Sessions pin one (a shared_ptr copy — O(1),
/// no data copied) and read it lock-free until they pin a newer one; commits
/// never mutate a published image, they publish a successor.
struct CatalogImage {
  uint64_t version = 0;
  std::map<std::string, ImageEntry> relations;
};

/// Identifies the request a commit group belongs to (DESIGN S26): when
/// present, the group-commit leader stages a WAL `ack` record into the same
/// sealed group, so the (token, request id) pair becomes durable atomically
/// with the commit and a post-crash retry can be answered from recovery
/// instead of re-executed. An empty token = untagged (v1 / embedded paths).
struct CommitTag {
  std::string token;
  uint64_t request_id = 0;
};

/// Server-wide group-commit counters (satellite of DESIGN S24): how well the
/// cross-session batching amortizes fsyncs.
struct GroupCommitStats {
  /// Session commit groups acknowledged.
  size_t commits = 0;
  /// Fsync batches those groups rode in (commits / batches = amortization).
  size_t batches = 0;
  /// Groups rejected by first-committer-wins conflict detection.
  size_t conflicts = 0;
  /// batch size (groups per fsync) -> number of batches of that size.
  std::map<size_t, size_t> batch_size_histogram;

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(commits) /
                              static_cast<double>(batches);
  }
};

/// The S24 server's shared truth: an immutable-image catalog with
/// cross-session group commit.
///
/// Readers: Snapshot() hands out the newest published image; a session reads
/// it without locks for as long as it stays pinned (snapshot isolation).
///
/// Writers: CommitGroup blocks until a LEADER processes it. The first
/// waiting committer becomes leader, drains the whole queue, runs
/// first-committer-wins conflict detection group by group (against the image
/// being built, so two same-batch groups writing one name conflict too),
/// seals every surviving group into the durable catalog, and commits them
/// all with ONE WAL append + ONE fsync (DurableCatalog::CommitSealedGroups).
/// Followers just wake up with their verdict. That is the paper-era group
/// commit trick: N concurrent COMMITs, one disk synchronization.
///
/// Without a durable directory the same protocol runs against the in-memory
/// image only (batching still measured, nothing fsync'd).
class SharedCatalog {
 public:
  /// What one acknowledged commit group learned.
  struct CommitResult {
    /// Records (relation puts) acknowledged for this group.
    size_t records = 0;
    /// The version the batch committed at.
    uint64_t version = 0;
  };

  /// An in-memory catalog (no durability).
  SharedCatalog();

  /// Opens (creating or crash-recovering) `directory`; recovered relations
  /// form image version 1 with writer_version 0 (visible to every snapshot,
  /// conflicting with nobody).
  static Result<std::unique_ptr<SharedCatalog>> Open(
      const std::string& directory, durability::Io io = durability::Io());

  ~SharedCatalog() = default;
  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// The newest published image.
  std::shared_ptr<const CatalogImage> Snapshot() const EXCLUDES(mutex_);

  /// Seeds `name` into the current image with writer_version 0 (pre-history:
  /// conflicts with nobody). For server start-up data; fails once any
  /// commit has been processed.
  Status Seed(const std::string& name, rel::Relation relation)
      EXCLUDES(mutex_);

  /// Commits one session's write set atomically, batched with whatever other
  /// sessions are committing right now (see class comment). Blocks until the
  /// verdict. Aborted = lost first-committer-wins on a relation name written
  /// after `snapshot_version`; any other error = the whole batch's durable
  /// append failed (nothing acknowledged).
  Result<CommitResult> CommitGroup(
      uint64_t snapshot_version,
      const std::vector<std::pair<std::string, const rel::Relation*>>& puts,
      CommitTag tag = CommitTag{}) EXCLUDES(mutex_);

  /// The highest request id `token` committed before the last crash
  /// (recovered from WAL ack records); false when the token has none.
  /// Callable under the server mutex: kServer is ACQUIRED_BEFORE
  /// kSharedCatalog in the lock hierarchy (DESIGN §2.10).
  bool RecoveredAckFor(const std::string& token, uint64_t* request_id,
                       uint64_t* records) const EXCLUDES(mutex_);

  /// Blocks until no group-commit leader is active and the commit queue is
  /// empty — the DRAIN barrier: after it, every acknowledged commit has been
  /// fsync'd and published.
  void Quiesce() EXCLUDES(mutex_);

  /// Rewrites the durable checkpoint (rename-swap) and resets the WAL;
  /// no-op (OK) without a durable directory. Excludes itself from running
  /// group commits.
  Status Checkpoint() EXCLUDES(mutex_);

  bool durable() const { return durable_ != nullptr; }

  GroupCommitStats stats() const EXCLUDES(mutex_);

  /// Counters of the underlying durable catalog (server-wide, cached under
  /// the catalog lock so readers never race the leader's IO); zeros when
  /// in-memory.
  durability::DurabilityStats durability_stats() const EXCLUDES(mutex_);

 private:
  struct CommitRequest {
    uint64_t snapshot_version = 0;
    std::vector<std::pair<std::string, std::shared_ptr<const rel::Relation>>>
        puts;
    CommitTag tag;
    bool done = false;
    Status status = Status::OK();
    CommitResult result;
  };

  /// Leader body: drains `batch`, publishes the successor image. Called
  /// WITHOUT mutex_ held; leader_active_ gives exclusive access to durable_
  /// and to image publication.
  void ProcessBatch(const std::vector<CommitRequest*>& batch)
      EXCLUDES(mutex_);

  mutable util::Mutex mutex_{util::LockRank::kSharedCatalog,
                             "shared-catalog"};
  util::CondVar cv_;
  std::deque<CommitRequest*> queue_ GUARDED_BY(mutex_);
  bool leader_active_ GUARDED_BY(mutex_) = false;
  std::shared_ptr<const CatalogImage> image_ GUARDED_BY(mutex_);
  /// NOT guarded by mutex_: exclusive to the active leader/checkpointer
  /// (leader_active_ hands it off), which calls into it with mutex_
  /// RELEASED — the pointee's own kWal-rank mutex is the hierarchy's sink.
  /// The pointer itself is const after Open.
  std::unique_ptr<durability::DurableCatalog> durable_;
  std::map<std::string, durability::RecoveredAck> recovered_acks_
      GUARDED_BY(mutex_);
  GroupCommitStats stats_ GUARDED_BY(mutex_);
  durability::DurabilityStats durability_stats_ GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace systolic

#endif  // SYSTOLIC_SERVER_SHARED_CATALOG_H_
