#ifndef SYSTOLIC_ARRAYS_COMPARISON_CELL_H_
#define SYSTOLIC_ARRAYS_COMPARISON_CELL_H_

#include <optional>
#include <string>

#include "arrays/edge_rule.h"
#include "relational/compare.h"
#include "systolic/cell.h"
#include "systolic/wire.h"

namespace systolic {
namespace arrays {

/// The paper's individual comparison processor (Fig. 3-2): three inputs
/// (a from above, b from below, t from the left), three outputs (a below,
/// b above, t to the right), computing
///     t_out = t_in AND (a_in θ b_in)
/// where θ is equality for the comparison/intersection arrays and any binary
/// comparison for the non-equi-join arrays (§6.3.2 — "the particular
/// operation to be performed might be ... preloaded into the array").
///
/// The a and b streams always pass straight through at one cell per pulse;
/// the comparison fires only on pulses where valid a and b words coincide in
/// the cell (the schedule guarantees each pair of tuples meets exactly once
/// per column, §3.2).
///
/// Cells in the left-most column have no t input wire (pass t_in == nullptr)
/// and synthesise the initial t value per `edge_rule`.
class ComparisonCell : public sim::Cell {
 public:
  ComparisonCell(std::string name, rel::ComparisonOp op, EdgeRule edge_rule,
                 sim::Wire* a_in, sim::Wire* b_in, sim::Wire* t_in,
                 sim::Wire* a_out, sim::Wire* b_out, sim::Wire* t_out)
      : Cell(std::move(name)),
        op_(op),
        edge_rule_(edge_rule),
        a_in_(a_in),
        b_in_(b_in),
        t_in_(t_in),
        a_out_(a_out),
        b_out_(b_out),
        t_out_(t_out) {}

  void Compute(size_t cycle) override;

 private:
  rel::ComparisonOp op_;
  EdgeRule edge_rule_;
  sim::Wire* a_in_;
  sim::Wire* b_in_;
  sim::Wire* t_in_;  // null in the left-most column
  sim::Wire* a_out_;
  sim::Wire* b_out_;
  sim::Wire* t_out_;
};

/// The §8 full-utilisation variant of the comparison processor: the b
/// element is preloaded and held fixed ("we let only one relation move while
/// the other remains fixed"), so the cell compares every passing a element
/// against its stored element, every pulse. With unit tuple spacing this
/// keeps the whole array busy instead of half of it.
class FixedComparisonCell : public sim::Cell {
 public:
  FixedComparisonCell(std::string name, rel::ComparisonOp op,
                      EdgeRule edge_rule, sim::Wire* a_in, sim::Wire* t_in,
                      sim::Wire* a_out, sim::Wire* t_out)
      : Cell(std::move(name)),
        op_(op),
        edge_rule_(edge_rule),
        a_in_(a_in),
        t_in_(t_in),
        a_out_(a_out),
        t_out_(t_out) {}

  /// Loads the fixed element (code plus originating tuple index). Until
  /// loaded the cell only forwards the a stream.
  void Preload(rel::Code code, sim::TupleTag b_tag) {
    stored_code_ = code;
    stored_tag_ = b_tag;
  }

  bool loaded() const { return stored_tag_ != sim::kNoTag; }

  void Compute(size_t cycle) override;

 private:
  rel::ComparisonOp op_;
  EdgeRule edge_rule_;
  sim::Wire* a_in_;
  sim::Wire* t_in_;  // null in the left-most column
  sim::Wire* a_out_;
  sim::Wire* t_out_;
  rel::Code stored_code_ = 0;
  sim::TupleTag stored_tag_ = sim::kNoTag;
};

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_COMPARISON_CELL_H_
