#include "arrays/accumulation_cell.h"

#include "util/logging.h"

namespace systolic {
namespace arrays {

using sim::Word;

void AccumulationCell::Compute(size_t cycle) {
  (void)cycle;
  const Word left = left_in_->Read();
  const Word top = top_in_ != nullptr ? top_in_->Read() : Word::Bubble();

  if (left.valid && top.valid) {
    SYSTOLIC_HW_CHECK_EQ(left.a_tag, top.a_tag)
        << name() << ": running value and left contribution disagree on tuple";
    down_out_->Write(
        Word::Boolean(left.AsBool() || top.AsBool(), left.a_tag, sim::kNoTag));
    MarkBusy();
  } else if (left.valid) {
    // First contribution for this tuple: becomes the running value.
    down_out_->Write(Word::Boolean(left.AsBool(), left.a_tag, sim::kNoTag));
    MarkBusy();
  } else if (top.valid) {
    // Not busy this pulse: pass the running value along unchanged.
    down_out_->Write(top);
  }
}

}  // namespace arrays
}  // namespace systolic
