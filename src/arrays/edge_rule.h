#ifndef SYSTOLIC_ARRAYS_EDGE_RULE_H_
#define SYSTOLIC_ARRAYS_EDGE_RULE_H_

namespace systolic {
namespace arrays {

/// How the left-most column of a comparison grid obtains the *initial* t
/// value for each tuple pair.
///
/// In the paper this initial value is part of the input data stream: TRUE for
/// ordinary comparisons, and FALSE for the pairs with i ≤ j in the
/// remove-duplicates array (§5's lower-triangle trick — "we set t_ij^initial
/// to FALSE" for the diagonal and upper triangle). The hardware realises the
/// choice by timing the left-edge input stream; the simulator's left-most
/// cells synthesise the identical value from the tuple tags of the pair
/// meeting in the cell, which is observationally equivalent and verified by
/// the timing tests.
enum class EdgeRule {
  /// t_ij^initial = TRUE for every pair (intersection, difference, join).
  kAllTrue,
  /// t_ij^initial = TRUE iff j < i (strict lower triangle): used by
  /// remove-duplicates, where tuple a_i must be deleted iff it equals some
  /// *earlier* tuple a_j (§5).
  kStrictLowerTriangle,
};

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_EDGE_RULE_H_
