#ifndef SYSTOLIC_ARRAYS_STATIONARY_GRID_H_
#define SYSTOLIC_ARRAYS_STATIONARY_GRID_H_

#include <string>
#include <vector>

#include "arrays/edge_rule.h"
#include "arrays/membership.h"
#include "relational/relation.h"
#include "systolic/cell.h"
#include "systolic/wire.h"
#include "util/bitvector.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// The stationary-result organisation of the comparison array — one of the
/// §8 "variations on the systolic arrays suggested ... All of these are
/// equivalent, and differ only in implementation details."
///
/// Here the t matrix does not move: cell (i, j) owns t_ij and accumulates
/// AND over the element comparisons as tuple a_i streams east along grid
/// row i and tuple b_j streams north along grid column j (inputs skewed so
/// element k of both tuples meets in cell (i, j) at pulse i+j+k+1). After
/// the streams drain, a probe pass ORs each row's t_ij into the row's
/// membership bit t_i, like the §7 divisor rows' "AND across the row".
///
/// Trade-offs vs the marching array (§3): |A|x|B| cells instead of
/// (2n-1)xm, but the cell count is independent of tuple width, any m runs
/// in one pass, and both input streams use unit tuple spacing.

/// One stationary cell: holds the running t_ij plus the pair's tags.
class StationaryCell : public sim::Cell {
 public:
  StationaryCell(std::string name, EdgeRule edge_rule, sim::Wire* x_in,
                 sim::Wire* x_out, sim::Wire* y_in, sim::Wire* y_out,
                 sim::Wire* probe_in, sim::Wire* probe_out)
      : Cell(std::move(name)), edge_rule_(edge_rule), x_in_(x_in),
        x_out_(x_out), y_in_(y_in), y_out_(y_out), probe_in_(probe_in),
        probe_out_(probe_out) {}

  void Compute(size_t cycle) override;

  bool touched() const { return touched_; }
  bool value() const { return t_; }

 private:
  /// The cell's contribution to the row OR: FALSE until touched, then t_ij
  /// masked by the edge rule on the stored pair tags.
  bool Contribution() const;

  EdgeRule edge_rule_;
  sim::Wire* x_in_;
  sim::Wire* x_out_;   // null at the east edge
  sim::Wire* y_in_;
  sim::Wire* y_out_;   // null at the north edge
  sim::Wire* probe_in_;  // null at the west edge? (west cells get probe fed)
  sim::Wire* probe_out_;
  bool t_ = true;
  bool touched_ = false;
  sim::TupleTag a_tag_ = sim::kNoTag;
  sim::TupleTag b_tag_ = sim::kNoTag;
};

/// Runs the membership query on a stationary grid of |A| x |B| cells and
/// returns bit i = OR_j (t_ij under the edge rule), as RunMembership does
/// for the marching/fixed grids. Single pass for any operand sizes (the
/// engine's tiling is not needed; capacity is bounded only by simulator
/// memory). Fails with InvalidArgument on zero-width tuples.
Result<BitVector> StationaryMembership(const rel::Relation& a,
                                       const rel::Relation& b,
                                       EdgeRule edge_rule,
                                       ArrayRunInfo* info);

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_STATIONARY_GRID_H_
