#ifndef SYSTOLIC_ARRAYS_BIT_SERIAL_H_
#define SYSTOLIC_ARRAYS_BIT_SERIAL_H_

#include <cstddef>

#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// §8's word→bit decomposition: "each word processor can be partitioned into
/// bit processors to achieve modularity at the bit-level. A transformation
/// of a design from word-level to bit-level is demonstrated in [3]."
///
/// The transformation is expressed here as a relation rewrite: every
/// `bits`-bit element becomes `bits` one-bit elements (LSB first), so a
/// width-m word-level array becomes a width-m·bits array of pure
/// bit-comparators — each cell now does exactly the 240µ×150µ bit
/// comparison §8's area arithmetic counts. Equality of tuples is preserved
/// (tuples are equal iff all their bits are equal), so every
/// equality-based array (comparison, intersection, difference,
/// remove-duplicates, union, projection, equi-join) runs unchanged on the
/// decomposed relations and produces identical selection vectors, at
/// `bits`× the columns and roughly `bits`× the pulses.
///
/// Order comparisons (θ-joins) do NOT decompose this way — bitwise AND of
/// per-column "<" is not tuple "<" — which is why the paper applies the
/// transformation to the comparison arrays, not the θ variants.

/// Rewrites `relation` into its bit-level form: arity m·bits, each element
/// 0 or 1, bit k of element c at column c·bits + k. Fails with
/// InvalidArgument if any code is negative or needs more than `bits` bits
/// (1..63). The result's schema uses fresh one-bit domains; two relations
/// decomposed by the same call sequence are union-compatible iff produced
/// by DecomposePairToBits.
Result<rel::Relation> DecomposeToBits(const rel::Relation& relation,
                                      size_t bits);

/// Decomposes two union-compatible relations onto one shared bit-level
/// schema, preserving their union-compatibility.
struct BitDecomposedPair {
  rel::Relation a;
  rel::Relation b;
};
Result<BitDecomposedPair> DecomposePairToBits(const rel::Relation& a,
                                              const rel::Relation& b,
                                              size_t bits);

/// Cells of the bit-level version of a rows x columns word-level grid —
/// the §8 comparators-per-chip quantity.
size_t BitLevelCellCount(size_t rows, size_t columns, size_t bits);

/// Smallest bit width that can represent every code of `relation`
/// (minimum 1). Fails if any code is negative.
Result<size_t> MinimumBitsFor(const rel::Relation& relation);

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_BIT_SERIAL_H_
