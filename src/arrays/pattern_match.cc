#include "arrays/pattern_match.h"

#include <optional>

#include "systolic/feeder.h"
#include "systolic/simulator.h"
#include "util/logging.h"

namespace systolic {
namespace arrays {

namespace {

using sim::Word;

/// One cell of the pattern-match array: holds pattern character k. Text
/// characters stream through left-to-right one cell per pulse; partial
/// match results follow at half speed (each cell registers the incoming
/// partial for one pulse before combining), so the partial for alignment i
/// arrives exactly when character i+k does — the same rendezvous the
/// comparison row achieves with input staggering, realised here with a
/// one-word register because the pattern is fixed while only the text
/// moves (§8's fixed-relation discipline).
class PatternMatchCell : public sim::Cell {
 public:
  PatternMatchCell(std::string name, size_t index, char pattern_char,
                   sim::Wire* char_in, sim::Wire* char_out, sim::Wire* t_in,
                   sim::Wire* t_out)
      : Cell(std::move(name)), index_(index), pattern_char_(pattern_char),
        char_in_(char_in), char_out_(char_out), t_in_(t_in), t_out_(t_out) {}

  void Compute(size_t cycle) override {
    (void)cycle;
    // Phase 1: process this pulse's character, consuming the partial that
    // was registered on the previous pulse.
    const Word c = char_in_->Read();
    if (c.valid) {
      if (char_out_ != nullptr) char_out_->Write(c);
      MarkBusy();
      const size_t j = static_cast<size_t>(c.a_tag);  // character index
      const bool is_padding = c.value < 0;
      // The head cell must not start alignments on padding characters
      // (their alignments have no first text character).
      if (j >= index_ && (index_ > 0 || !is_padding)) {
        const bool own = !is_padding &&
                         (pattern_char_ == '?' ||
                          static_cast<char>(c.value) == pattern_char_);
        if (index_ == 0) {
          t_out_->Write(Word::Boolean(own, static_cast<sim::TupleTag>(j),
                                      sim::kNoTag));
        } else if (pending_.has_value()) {
          SYSTOLIC_HW_CHECK_EQ(static_cast<size_t>(pending_->a_tag), j - index_)
              << name() << ": partial/character misalignment";
          const bool combined = pending_->AsBool() && own;
          pending_.reset();
          t_out_->Write(Word::Boolean(combined,
                                      static_cast<sim::TupleTag>(j - index_),
                                      sim::kNoTag));
        } else {
          // No partial: only legal for alignments that began in the padding
          // region — upstream never started them. A missing partial for a
          // real character is a schedule bug.
          SYSTOLIC_HW_CHECK(is_padding)
              << name() << ": missing partial for alignment " << (j - index_);
        }
      }
    }

    // Phase 2: latch the partial arriving one pulse ahead of its character.
    if (t_in_ != nullptr && t_in_->Read().valid) {
      SYSTOLIC_HW_CHECK(!pending_.has_value())
          << name() << ": partial result overrun";
      pending_ = t_in_->Read();
    }
  }

  bool HasPendingWork() const override { return pending_.has_value(); }

 private:
  size_t index_;
  char pattern_char_;
  sim::Wire* char_in_;
  sim::Wire* char_out_;  // null for the last cell
  sim::Wire* t_in_;      // null for the first cell
  sim::Wire* t_out_;
  std::optional<Word> pending_;
};

}  // namespace

Result<PatternMatchResult> SystolicPatternMatch(const std::string& text,
                                                const std::string& pattern) {
  if (pattern.empty()) {
    return Status::InvalidArgument("pattern must be non-empty");
  }
  if (pattern.size() > text.size()) {
    return Status::InvalidArgument("pattern longer than text");
  }
  const size_t K = pattern.size();
  const size_t N = text.size();

  sim::Simulator simulator;
  std::vector<sim::Wire*> chars(K);
  std::vector<sim::Wire*> partials(K);
  for (size_t k = 0; k < K; ++k) {
    chars[k] = simulator.NewWire("c" + std::to_string(k));
    partials[k] = simulator.NewWire("t" + std::to_string(k));
  }
  for (size_t k = 0; k < K; ++k) {
    simulator.AddCell<PatternMatchCell>(
        "pm" + std::to_string(k), k, pattern[k], chars[k],
        k + 1 < K ? chars[k + 1] : nullptr,
        k == 0 ? nullptr : partials[k - 1], partials[k]);
  }
  auto* feeder =
      simulator.AddInfrastructureCell<sim::StreamFeeder>("text", chars[0]);
  auto* sink = simulator.AddInfrastructureCell<sim::SinkCell>(
      "matches", partials[K - 1]);

  // The text proper, then K-1 padding characters that flush the partials of
  // the incomplete tail alignments out of the cells' registers (hardware
  // would stream the next block or idle padding the same way). Padding uses
  // code -1, outside the unsigned-char range, so it never matches.
  for (size_t j = 0; j < N + K - 1; ++j) {
    const rel::Code code =
        j < N ? static_cast<rel::Code>(static_cast<unsigned char>(text[j]))
              : rel::Code{-1};
    feeder->ScheduleAt(j, Word::Element(code, static_cast<sim::TupleTag>(j)));
  }

  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles,
                            simulator.RunUntilQuiescent(4 * (N + 2 * K) + 64));
  PatternMatchResult result;
  result.cycles = cycles;
  result.cells = K;
  result.match_at.assign(N - K + 1, false);
  for (const auto& [cycle, word] : sink->received()) {
    const size_t i = static_cast<size_t>(word.a_tag);
    if (i >= result.match_at.size()) {
      continue;  // incomplete tail alignment flushed by the padding
    }
    result.match_at[i] = word.AsBool();
    if (word.AsBool()) result.positions.push_back(i);
  }
  return result;
}

}  // namespace arrays
}  // namespace systolic
