#include "arrays/comparison_cell.h"

#include "util/logging.h"

namespace systolic {
namespace arrays {

using sim::Word;

namespace {

/// The initial t value for the pair (a_tag, b_tag) under `rule` — the value
/// the hardware would have injected at the left edge of the row (§4, §5).
bool InitialT(EdgeRule rule, sim::TupleTag a_tag, sim::TupleTag b_tag) {
  switch (rule) {
    case EdgeRule::kAllTrue:
      return true;
    case EdgeRule::kStrictLowerTriangle:
      return b_tag < a_tag;
  }
  return true;
}

}  // namespace

void ComparisonCell::Compute(size_t cycle) {
  (void)cycle;
  const Word a = a_in_->Read();
  const Word b = b_in_->Read();

  // Relation streams march through unconditionally, one cell per pulse.
  if (a.valid) a_out_->Write(a);
  if (b.valid) b_out_->Write(b);

  const Word t = t_in_ != nullptr ? t_in_->Read() : Word::Bubble();

  if (a.valid && b.valid) {
    // The pair meets here: its partial result must be present (left-most
    // column synthesises it; inner columns receive it in lock-step with the
    // staggered elements — a missing or mismatched t word is a schedule bug).
    bool t_in_value;
    if (t_in_ == nullptr) {
      t_in_value = InitialT(edge_rule_, a.a_tag, b.b_tag);
    } else {
      SYSTOLIC_HW_CHECK(t.valid) << name() << ": elements met without a t word";
      SYSTOLIC_HW_CHECK(t.a_tag == a.a_tag && t.b_tag == b.b_tag)
          << name() << ": t word for pair (" << t.a_tag << "," << t.b_tag
          << ") met elements (" << a.a_tag << "," << b.b_tag << ")";
      t_in_value = t.AsBool();
    }
    const bool matched = rel::ApplyComparison(op_, a.value, b.value);
    t_out_->Write(Word::Boolean(t_in_value && matched, a.a_tag, b.b_tag));
    MarkBusy();
  } else {
    // No meeting this pulse; a stray t word would indicate a broken schedule.
    SYSTOLIC_HW_CHECK(!t.valid)
        << name() << ": t word arrived without a meeting pair";
  }
}

void FixedComparisonCell::Compute(size_t cycle) {
  (void)cycle;
  const Word a = a_in_->Read();
  if (a.valid) a_out_->Write(a);

  const Word t = t_in_ != nullptr ? t_in_->Read() : Word::Bubble();

  if (a.valid && loaded()) {
    bool t_in_value;
    if (t_in_ == nullptr) {
      t_in_value = InitialT(edge_rule_, a.a_tag, stored_tag_);
    } else {
      SYSTOLIC_HW_CHECK(t.valid) << name()
                                 << ": a element passed without a t word";
      SYSTOLIC_HW_CHECK(t.a_tag == a.a_tag && t.b_tag == stored_tag_)
          << name() << ": t word tags (" << t.a_tag << "," << t.b_tag
          << ") do not match (" << a.a_tag << "," << stored_tag_ << ")";
      t_in_value = t.AsBool();
    }
    const bool matched = rel::ApplyComparison(op_, a.value, stored_code_);
    t_out_->Write(Word::Boolean(t_in_value && matched, a.a_tag, stored_tag_));
    MarkBusy();
  } else {
    SYSTOLIC_HW_CHECK(!t.valid)
        << name() << ": t word arrived without an a element";
  }
}

}  // namespace arrays
}  // namespace systolic
