#include "arrays/hex_grid.h"

#include <algorithm>
#include <map>
#include <string>

#include "systolic/feeder.h"
#include "systolic/simulator.h"
#include "util/logging.h"

namespace systolic {
namespace arrays {

// Schedule derivation (verified by the timing checks below and the tests):
// with stream directions dA=(1,0), dB=(0,1), dC=(-1,-1) and
//   a_ik entering lattice row y=i-k at x=-k on pulse i+k (then moving east),
//   b_jk entering column x=j-k at y=-k on pulse j+k (moving north),
//   t_ij seeded so that it reaches cell (j, i) on pulse i+j (moving SW),
// the three words of the triple (i, j, k) coincide at cell (j-k, i-k) on
// pulse i+j+k, and these are the ONLY multi-stream coincidences:
//   * two a words share a cell only if they are the same word (their row
//     y=i-k and diagonal phase x+2k-i coincide only for equal (i,k));
//   * an a word and a b word coincide only at a rendezvous with matching k;
//   * an a (or b) word meets a t word only at that pair's rendezvous.
// Hence a cell computes exactly when all three inputs are valid, which the
// runtime CHECKs enforce.

namespace {

using sim::Word;

/// One hexagonal cell: three inputs (a from west, b from south, t from the
/// northeast), three outputs. On a triple rendezvous it performs
/// t := t AND (a == b); otherwise it forwards whatever stream is passing.
class HexCell : public sim::Cell {
 public:
  HexCell(std::string name, sim::Wire* a_in, sim::Wire* a_out, sim::Wire* b_in,
          sim::Wire* b_out, sim::Wire* t_in, sim::Wire* t_out)
      : Cell(std::move(name)), a_in_(a_in), a_out_(a_out), b_in_(b_in),
        b_out_(b_out), t_in_(t_in), t_out_(t_out) {}

  void Compute(size_t cycle) override {
    (void)cycle;
    const Word a = a_in_->Read();
    const Word b = b_in_->Read();
    const Word t = t_in_->Read();
    if (a.valid && a_out_ != nullptr) a_out_->Write(a);
    if (b.valid && b_out_ != nullptr) b_out_->Write(b);

    if (a.valid && b.valid) {
      SYSTOLIC_HW_CHECK(t.valid) << name() << ": rendezvous without a t word";
      SYSTOLIC_HW_CHECK(t.a_tag == a.a_tag && t.b_tag == b.b_tag)
          << name() << ": t word (" << t.a_tag << "," << t.b_tag
          << ") met elements (" << a.a_tag << "," << b.b_tag << ")";
      t_out_->Write(
          Word::Boolean(t.AsBool() && a.value == b.value, t.a_tag, t.b_tag));
      MarkBusy();
    } else {
      SYSTOLIC_HW_CHECK(!(a.valid || b.valid) || !t.valid)
          << name() << ": partial rendezvous (schedule bug)";
      if (t.valid) t_out_->Write(t);  // completed/seeded t in transit
    }
  }

 private:
  sim::Wire* a_in_;
  sim::Wire* a_out_;  // null at the east boundary
  sim::Wire* b_in_;
  sim::Wire* b_out_;  // null at the north boundary
  sim::Wire* t_in_;
  sim::Wire* t_out_;  // never null: boundary cells write terminal wires
};

}  // namespace

Result<HexResult> HexCompare(const rel::Relation& a, const rel::Relation& b,
                             EdgeRule edge_rule) {
  if (a.arity() == 0 || a.arity() != b.arity()) {
    return Status::InvalidArgument(
        "hex array requires equal, non-zero tuple widths");
  }
  HexResult result;
  result.membership = BitVector(a.num_tuples(), false);
  if (a.num_tuples() == 0 || b.num_tuples() == 0) return result;

  const size_t n_a = a.num_tuples();
  const size_t n_b = b.num_tuples();
  const size_t m = a.arity();
  // Lattice bounds: x in [-(m-1), n_b-1], y in [-(m-1), n_a-1]; store with
  // offset so indices are non-negative.
  const size_t off = m - 1;
  const size_t U = n_b + m - 1;  // columns
  const size_t V = n_a + m - 1;  // rows

  sim::Simulator simulator;
  auto wire_name = [](const char* p, size_t u, size_t v) {
    return std::string(p) + std::to_string(u) + "," + std::to_string(v);
  };
  // A[u][v]: west->east wire INTO cell (u,v). B[u][v]: south->north wire
  // into (u,v). T[u][v]: the wire WRITTEN by cell (u,v) toward (u-1,v-1);
  // T_in of (u,v) is T[u+1][v+1] (allocated up to U,V for the NE boundary).
  std::vector<std::vector<sim::Wire*>> A(U, std::vector<sim::Wire*>(V));
  std::vector<std::vector<sim::Wire*>> B(U, std::vector<sim::Wire*>(V));
  std::vector<std::vector<sim::Wire*>> T(U + 1,
                                         std::vector<sim::Wire*>(V + 1));
  for (size_t u = 0; u < U; ++u) {
    for (size_t v = 0; v < V; ++v) {
      A[u][v] = simulator.NewWire(wire_name("a", u, v));
      B[u][v] = simulator.NewWire(wire_name("b", u, v));
    }
  }
  for (size_t u = 0; u <= U; ++u) {
    for (size_t v = 0; v <= V; ++v) {
      T[u][v] = simulator.NewWire(wire_name("t", u, v));
    }
  }

  for (size_t u = 0; u < U; ++u) {
    for (size_t v = 0; v < V; ++v) {
      simulator.AddCell<HexCell>(
          "hex(" + std::to_string(u) + "," + std::to_string(v) + ")",
          /*a_in=*/A[u][v],
          /*a_out=*/u + 1 < U ? A[u + 1][v] : nullptr,
          /*b_in=*/B[u][v],
          /*b_out=*/v + 1 < V ? B[u][v + 1] : nullptr,
          /*t_in=*/T[u + 1][v + 1],
          /*t_out=*/T[u][v]);
    }
  }

  // Sinks on the southwest boundary: every T wire written by a boundary
  // cell (u==0 or v==0) terminates here.
  std::vector<sim::SinkCell*> sinks;
  for (size_t u = 0; u < U; ++u) {
    sinks.push_back(simulator.AddInfrastructureCell<sim::SinkCell>(
        "sinkS" + std::to_string(u), T[u][0]));
  }
  for (size_t v = 1; v < V; ++v) {
    sinks.push_back(simulator.AddInfrastructureCell<sim::SinkCell>(
        "sinkW" + std::to_string(v), T[0][v]));
  }

  // Injection at first-use points (observationally identical to boundary
  // feeding; avoids modelling the inert approach path). The whole schedule
  // is shifted one pulse late relative to the derivation header, so that
  // the earliest words (the (0,0,0) triple, rendezvous pulse 0 in derived
  // time) have a legal injection pulse: word needed in its cell at derived
  // pulse P is written at pulse P, read at P+1.
  //   a_ik -> wire A at cell (x=-k, y=i-k), write pulse i+k;
  //   b_jk -> wire B at cell (x=j-k, y=-k), write pulse j+k;
  //   t_ij seed -> T_in of cell (x=j, y=i), write pulse i+j.
  // Each injection wire is also driven by upstream cells, but never on the
  // same pulse (distinct words on one wire are 3 pulses apart; the wire's
  // single-driver check would catch any violation).
  auto a_feeder = [&](size_t u, size_t v) {
    return simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "fa" + std::to_string(u) + "," + std::to_string(v), A[u][v]);
  };
  auto b_feeder = [&](size_t u, size_t v) {
    return simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "fb" + std::to_string(u) + "," + std::to_string(v), B[u][v]);
  };
  auto t_feeder = [&](size_t u, size_t v) {
    return simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "ft" + std::to_string(u) + "," + std::to_string(v), T[u][v]);
  };
  // One feeder per distinct injection wire (feeders keyed by wire).
  std::map<std::pair<size_t, size_t>, sim::StreamFeeder*> fa, fb, ft;
  auto feeder_for = [&](auto& cache, auto maker, size_t u, size_t v) {
    auto key = std::make_pair(u, v);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    auto* feeder = maker(u, v);
    cache.emplace(key, feeder);
    return feeder;
  };

  for (size_t i = 0; i < n_a; ++i) {
    for (size_t k = 0; k < m; ++k) {
      const size_t u = off - k;          // x = -k
      const size_t v = i - k + off;      // y = i-k
      feeder_for(fa, a_feeder, u, v)
          ->ScheduleAt(i + k, Word::Element(a.tuple(i)[k],
                                            static_cast<sim::TupleTag>(i)));
    }
  }
  for (size_t j = 0; j < n_b; ++j) {
    for (size_t k = 0; k < m; ++k) {
      const size_t u = j - k + off;
      const size_t v = off - k;
      feeder_for(fb, b_feeder, u, v)
          ->ScheduleAt(j + k, Word::ElementB(b.tuple(j)[k],
                                             static_cast<sim::TupleTag>(j)));
    }
  }
  for (size_t i = 0; i < n_a; ++i) {
    for (size_t j = 0; j < n_b; ++j) {
      const bool init =
          edge_rule == EdgeRule::kStrictLowerTriangle ? (j < i) : true;
      // T_in of cell (x=j, y=i) is T[u+1][v+1].
      const size_t u = j + off + 1;
      const size_t v = i + off + 1;
      feeder_for(ft, t_feeder, u, v)
          ->ScheduleAt(i + j, Word::Boolean(init,
                                            static_cast<sim::TupleTag>(i),
                                            static_cast<sim::TupleTag>(j)));
    }
  }

  const size_t bound = 8 * (n_a + n_b + m + U + V) + 64;
  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles,
                            simulator.RunUntilQuiescent(bound));
  result.info.cycles = cycles;
  result.info.sim = simulator.Stats();

  BitVector seen(n_a * n_b, false);
  for (const sim::SinkCell* sink : sinks) {
    for (const auto& [cycle, word] : sink->received()) {
      if (word.a_tag < 0 || word.b_tag < 0 ||
          static_cast<size_t>(word.a_tag) >= n_a ||
          static_cast<size_t>(word.b_tag) >= n_b) {
        return Status::Internal("hex array emitted out-of-range tags");
      }
      const size_t i = static_cast<size_t>(word.a_tag);
      const size_t j = static_cast<size_t>(word.b_tag);
      const size_t flat = i * n_b + j;
      if (seen.Get(flat)) {
        return Status::Internal("hex array emitted pair (" +
                                std::to_string(i) + "," + std::to_string(j) +
                                ") twice");
      }
      seen.Set(flat, true);
      if (word.AsBool()) {
        result.membership.Set(i, true);
        result.true_pairs.emplace_back(i, j);
      }
    }
  }
  if (seen.CountOnes() != n_a * n_b) {
    return Status::Internal("hex array lost " +
                            std::to_string(n_a * n_b - seen.CountOnes()) +
                            " T entries");
  }
  std::sort(result.true_pairs.begin(), result.true_pairs.end());
  return result;
}

}  // namespace arrays
}  // namespace systolic
