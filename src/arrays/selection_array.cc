#include "arrays/selection_array.h"

#include "arrays/comparison_grid.h"
#include "systolic/feeder.h"
#include "systolic/simulator.h"

namespace systolic {
namespace arrays {

Status ValidateSelection(const rel::Schema& schema,
                         const std::vector<SelectionPredicate>& predicates) {
  for (const SelectionPredicate& p : predicates) {
    if (p.column >= schema.num_columns()) {
      return Status::OutOfRange("selection column " + std::to_string(p.column) +
                                " exceeds arity " +
                                std::to_string(schema.num_columns()));
    }
    const auto& domain = schema.column(p.column).domain;
    if (!rel::IsEqualityOp(p.op) && !domain->ordered()) {
      return Status::InvalidArgument(
          std::string("comparison '") + rel::ComparisonOpToString(p.op) +
          "' requires an ordered domain, but '" + domain->name() +
          "' is dictionary-encoded");
    }
  }
  return Status::OK();
}

Result<SelectionResult> SystolicSelect(
    const rel::Relation& a, const std::vector<SelectionPredicate>& predicates,
    size_t max_cycles) {
  SYSTOLIC_RETURN_NOT_OK(ValidateSelection(a.schema(), predicates));
  if (predicates.empty()) {
    SelectionResult all(a);
    all.selected = BitVector(a.num_tuples(), true);
    return all;
  }
  if (a.num_tuples() == 0) {
    SelectionResult empty(rel::Relation(a.schema(), rel::RelationKind::kSet));
    return empty;
  }

  // One row of fixed cells, one per predicate, comparator preloaded per
  // column. The constants travel in as a one-tuple "relation" over the
  // predicate columns' schema.
  std::vector<size_t> feed_columns;
  std::vector<rel::ComparisonOp> ops;
  rel::Tuple constants;
  for (const SelectionPredicate& p : predicates) {
    feed_columns.push_back(p.column);
    ops.push_back(p.op);
    constants.push_back(p.constant);
  }
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Schema constant_schema,
                            a.schema().Project(feed_columns));
  rel::Relation constant_rel(std::move(constant_schema),
                             rel::RelationKind::kSet);
  SYSTOLIC_RETURN_NOT_OK(constant_rel.Append(std::move(constants)));

  sim::Simulator simulator;
  GridConfig config;
  config.rows = 1;
  config.columns = predicates.size();
  config.column_ops = std::move(ops);
  config.edge_rule = EdgeRule::kAllTrue;
  config.mode = FeedMode::kFixedB;
  ComparisonGrid grid(&simulator, config);
  auto* sink =
      simulator.AddInfrastructureCell<sim::SinkCell>("sel", grid.right_edge(0));

  SYSTOLIC_RETURN_NOT_OK(grid.FeedA(a, feed_columns));
  std::vector<size_t> identity(predicates.size());
  for (size_t k = 0; k < identity.size(); ++k) identity[k] = k;
  SYSTOLIC_RETURN_NOT_OK(grid.PreloadB(constant_rel, identity));

  const size_t bound = max_cycles != 0
                           ? max_cycles
                           : 4 * (a.num_tuples() + predicates.size()) + 64;
  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles, simulator.RunUntilQuiescent(bound));

  BitVector bits(a.num_tuples(), false);
  for (const auto& [cycle, word] : sink->received()) {
    if (word.a_tag < 0 || static_cast<size_t>(word.a_tag) >= bits.size()) {
      return Status::Internal("selection array emitted bad tuple tag");
    }
    bits.Set(static_cast<size_t>(word.a_tag), word.AsBool());
  }
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  SelectionResult result(std::move(out));
  result.selected = std::move(bits);
  result.info.cycles = cycles;
  result.info.sim = simulator.Stats();
  return result;
}

}  // namespace arrays
}  // namespace systolic
