#ifndef SYSTOLIC_ARRAYS_PATTERN_MATCH_H_
#define SYSTOLIC_ARRAYS_PATTERN_MATCH_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace systolic {
namespace arrays {

/// The pattern-match chip of Foster & Kung [3], which §8 cites as the
/// fabricated, tested ancestor of the comparison array: "The pattern-match
/// chip can be viewed as a scaled-down version of the comparison array in
/// Section 3. (This chip has been fabricated, tested, and found to work.)"
///
/// The device holds a fixed pattern of k characters (with '?' wildcards),
/// one per cell; the text streams through; each cell ANDs its character
/// comparison into a result chain exactly like the comparison row's t chain,
/// and the right edge reports, for every alignment of the pattern against
/// the text, whether it matches. It is the §5 dedup array's "fixed one
/// relation" discipline applied to substring search, and it shares the
/// FixedComparisonCell timing: one text character per pulse, full
/// utilisation in steady state.

/// Result of one pattern-match run.
struct PatternMatchResult {
  /// match_at[i] == true iff pattern matches text starting at position i
  /// (i in [0, text.size() - pattern.size()]).
  std::vector<bool> match_at;
  /// Positions of all matches, ascending.
  std::vector<size_t> positions;
  /// Pulses to drain the device.
  size_t cycles = 0;
  /// Cells = pattern length.
  size_t cells = 0;
};

/// Streams `text` through a linear array preloaded with `pattern` ('?'
/// matches any character). Fails with InvalidArgument on an empty pattern
/// or a pattern longer than the text.
Result<PatternMatchResult> SystolicPatternMatch(const std::string& text,
                                                const std::string& pattern);

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_PATTERN_MATCH_H_
