#ifndef SYSTOLIC_ARRAYS_SELECTION_ARRAY_H_
#define SYSTOLIC_ARRAYS_SELECTION_ARRAY_H_

#include <vector>

#include "arrays/intersection_array.h"
#include "relational/compare.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// One conjunct of a selection: `column θ constant` over element codes.
struct SelectionPredicate {
  size_t column = 0;
  rel::ComparisonOp op = rel::ComparisonOp::kEq;
  rel::Code constant = 0;
};

/// σ_{p1 ∧ p2 ∧ ...}(A) as systolic hardware: a single-row fixed array with
/// one cell per predicate, each preloaded with its constant and its
/// comparison (§6.3.2's observation that "the particular operation to be
/// performed might be ... preloaded into the array" provides exactly this
/// programmability). A streams through at one tuple per pulse; the t chain
/// ANDs the predicate results and the right edge emits one selection bit
/// per tuple — the same interface as the membership arrays, so the engine
/// and the §9 machine treat selection like any other device.
///
/// Order predicates require ordered (identity-encoded) domains, as
/// elsewhere. An empty predicate list selects everything (vacuous
/// conjunction) without building hardware.
Result<SelectionResult> SystolicSelect(
    const rel::Relation& a, const std::vector<SelectionPredicate>& predicates,
    size_t max_cycles = 0);

/// Validates predicates against a schema: in-range columns, order ops only
/// on ordered domains.
Status ValidateSelection(const rel::Schema& schema,
                         const std::vector<SelectionPredicate>& predicates);

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_SELECTION_ARRAY_H_
