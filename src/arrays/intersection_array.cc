#include "arrays/intersection_array.h"

#include "systolic/schedule.h"

namespace systolic {
namespace arrays {

namespace {

Result<SelectionResult> RunIntersectionFamily(const rel::Relation& a,
                                              const rel::Relation& b,
                                              const MembershipOptions& options,
                                              bool invert) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  if (a.arity() == 0) {
    return Status::InvalidArgument("operands must have at least one column");
  }
  ArrayRunInfo info;
  SYSTOLIC_ASSIGN_OR_RETURN(
      BitVector bits,
      RunMembership(a, b, sim::AllColumns(a), sim::AllColumns(b),
                    EdgeRule::kAllTrue, options, &info));
  if (invert) bits.FlipAll();
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Relation out,
                            a.Filter(bits, rel::RelationKind::kSet));
  SelectionResult result(std::move(out));
  result.selected = std::move(bits);
  result.info = info;
  return result;
}

}  // namespace

Result<SelectionResult> SystolicIntersection(const rel::Relation& a,
                                             const rel::Relation& b,
                                             const MembershipOptions& options) {
  return RunIntersectionFamily(a, b, options, /*invert=*/false);
}

Result<SelectionResult> SystolicDifference(const rel::Relation& a,
                                           const rel::Relation& b,
                                           const MembershipOptions& options) {
  return RunIntersectionFamily(a, b, options, /*invert=*/true);
}

}  // namespace arrays
}  // namespace systolic
