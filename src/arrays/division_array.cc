#include "arrays/division_array.h"

#include <map>
#include <vector>

#include "arrays/division_cells.h"
#include "systolic/feeder.h"
#include "systolic/simulator.h"

namespace systolic {
namespace arrays {

namespace {

/// Packs each sub-tuple over `columns` into a scratch integer code (fresh
/// codes in first-occurrence order), recording the distinct sub-tuples in
/// `order`. The shared map lets A's divisor part and B use one code space.
rel::Code PackSubTuple(const rel::Tuple& tuple,
                       const std::vector<size_t>& columns,
                       std::map<rel::Tuple, rel::Code>* codes,
                       std::vector<rel::Tuple>* order) {
  rel::Tuple sub;
  sub.reserve(columns.size());
  for (size_t c : columns) sub.push_back(tuple[c]);
  auto [it, inserted] =
      codes->emplace(std::move(sub), static_cast<rel::Code>(codes->size()));
  if (inserted && order != nullptr) order->push_back(it->first);
  return it->second;
}

}  // namespace

Result<DivisionArrayResult> SystolicDivision(const rel::Relation& a,
                                             const rel::Relation& b,
                                             const rel::DivisionSpec& spec,
                                             const DivisionArrayOptions& options) {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateDivisionSpec(a.schema(), b.schema(), spec));
  const std::vector<size_t> quotient_columns =
      rel::DivisionQuotientColumns(a.schema(), spec);
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Schema out_schema,
                            rel::DivisionOutputSchema(a.schema(), spec));
  DivisionArrayResult result(
      rel::Relation(std::move(out_schema), rel::RelationKind::kSet));
  if (a.num_tuples() == 0) {
    return result;
  }

  // Pack multi-column sub-tuples into single scratch codes (§2.3-style
  // reversible encoding); single-column specs pack to a bijection of the
  // original codes, so the restricted case is unchanged.
  std::map<rel::Tuple, rel::Code> x_codes;
  std::vector<rel::Tuple> x_order;  // distinct quotient values, in A order
  std::map<rel::Tuple, rel::Code> y_codes;
  std::vector<std::pair<rel::Code, rel::Code>> pairs;  // (x, y) per A tuple
  pairs.reserve(a.num_tuples());
  for (const rel::Tuple& ta : a.tuples()) {
    const rel::Code x = PackSubTuple(ta, quotient_columns, &x_codes, &x_order);
    const rel::Code y = PackSubTuple(ta, spec.a_columns, &y_codes, nullptr);
    pairs.emplace_back(x, y);
  }
  std::vector<rel::Code> divisor;  // distinct divisor values
  {
    std::map<rel::Tuple, rel::Code> seen;
    for (const rel::Tuple& tb : b.tuples()) {
      const rel::Code packed = PackSubTuple(tb, spec.b_columns, &y_codes, nullptr);
      // Deduplicate: only the first sighting of each distinct divisor value
      // is preloaded (the paper stores "elements appearing in the divisor").
      rel::Tuple sub;
      sub.reserve(spec.b_columns.size());
      for (size_t c : spec.b_columns) sub.push_back(tb[c]);
      if (seen.emplace(std::move(sub), packed).second) divisor.push_back(packed);
    }
  }

  const size_t P = x_order.size();   // dividend rows
  const size_t Q = divisor.size();   // divisor cells per row
  result.dividend_rows = P;
  result.divisor_cells = Q;

  // --- Build the device (Fig. 7-2). ---
  sim::Simulator simulator;
  std::vector<sim::Wire*> z(P + 1);
  std::vector<sim::Wire*> y(P + 1);
  for (size_t p = 0; p <= P; ++p) {
    z[p] = simulator.NewWire("z" + std::to_string(p));
    y[p] = simulator.NewWire("y" + std::to_string(p));
  }
  std::vector<std::vector<sim::Wire*>> lane(P);
  std::vector<DividendStoreCell*> stores(P);
  std::vector<DivisorCell*> divisor_cells;
  std::vector<sim::SinkCell*> sinks(P);
  for (size_t p = 0; p < P; ++p) {
    sim::Wire* match = simulator.NewWire("m" + std::to_string(p));
    lane[p].resize(Q + 1);
    for (size_t q = 0; q <= Q; ++q) {
      lane[p][q] = simulator.NewWire("lane" + std::to_string(p) + "," +
                                     std::to_string(q));
    }
    stores[p] = simulator.AddCell<DividendStoreCell>(
        "store" + std::to_string(p), z[p], z[p + 1], match);
    stores[p]->Preload(static_cast<rel::Code>(p),
                       static_cast<sim::TupleTag>(p));
    simulator.AddCell<DividendGateCell>("gate" + std::to_string(p), y[p],
                                        y[p + 1], match, lane[p][0]);
    for (size_t q = 0; q < Q; ++q) {
      DivisorCell* cell = simulator.AddCell<DivisorCell>(
          "div" + std::to_string(p) + "," + std::to_string(q), lane[p][q],
          lane[p][q + 1]);
      cell->Preload(divisor[q]);
      divisor_cells.push_back(cell);
    }
    sinks[p] = simulator.AddInfrastructureCell<sim::SinkCell>(
        "quot" + std::to_string(p), lane[p][Q]);
  }
  auto* z_feeder =
      simulator.AddInfrastructureCell<sim::StreamFeeder>("feed-z", z[0]);
  auto* y_feeder =
      simulator.AddInfrastructureCell<sim::StreamFeeder>("feed-y", y[0]);
  std::vector<sim::StreamFeeder*> probe_feeders(P);
  for (size_t p = 0; p < P; ++p) {
    probe_feeders[p] = simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "probe" + std::to_string(p), lane[p][0]);
  }

  // --- Phase 1: pump the dividend pairs through, y one pulse behind x. ---
  for (size_t t = 0; t < pairs.size(); ++t) {
    const auto tag = static_cast<sim::TupleTag>(t);
    z_feeder->ScheduleAt(t, sim::Word::Element(pairs[t].first, tag));
    y_feeder->ScheduleAt(t + 1, sim::Word::Element(pairs[t].second, tag));
  }
  const size_t max_cycles =
      options.max_cycles != 0 ? options.max_cycles
                              : 4 * (pairs.size() + P + Q) + 64;
  SYSTOLIC_RETURN_NOT_OK(simulator.RunUntilQuiescent(max_cycles).status());

  // --- Phase 2: AND-probe each divisor row (§7's "AND across the row"). ---
  for (size_t p = 0; p < P; ++p) {
    sinks[p]->Clear();
    probe_feeders[p]->ScheduleAt(
        simulator.cycle(),
        sim::Word::Boolean(true, sim::kNoTag, static_cast<sim::TupleTag>(p)));
  }
  for (DivisorCell* cell : divisor_cells) cell->SetPhase(DivisorPhase::kCollect);
  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles,
                            simulator.RunUntilQuiescent(max_cycles));
  result.info.cycles = cycles;
  result.info.sim = simulator.Stats();

  for (size_t p = 0; p < P; ++p) {
    if (sinks[p]->received().size() != 1) {
      return Status::Internal("divisor row " + std::to_string(p) +
                              " emitted " +
                              std::to_string(sinks[p]->received().size()) +
                              " probe results, expected 1");
    }
    if (sinks[p]->received()[0].second.AsBool()) {
      SYSTOLIC_RETURN_NOT_OK(result.relation.Append(x_order[p]));
    }
  }
  return result;
}

}  // namespace arrays
}  // namespace systolic
