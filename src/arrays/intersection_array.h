#ifndef SYSTOLIC_ARRAYS_INTERSECTION_ARRAY_H_
#define SYSTOLIC_ARRAYS_INTERSECTION_ARRAY_H_

#include "arrays/membership.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// Result of an intersection-family array run.
struct SelectionResult {
  /// The materialised output relation.
  rel::Relation relation;
  /// The raw per-A-tuple selection bits the array emitted (§4's t_i, already
  /// inverted for difference), from which `relation` was filtered.
  BitVector selected;
  /// Cycle count and utilisation of the run.
  ArrayRunInfo info;

  explicit SelectionResult(rel::Relation r) : relation(std::move(r)) {}
};

/// A ∩ B on the intersection array (§4, Fig. 4-1): feeds both relations
/// through a comparison grid, ORs each row of the t matrix in the
/// accumulation column, and keeps the tuples of A whose t_i is TRUE.
/// Requires union-compatible operands sized within one pass (use the engine
/// for automatic tiling).
Result<SelectionResult> SystolicIntersection(
    const rel::Relation& a, const rel::Relation& b,
    const MembershipOptions& options = {});

/// A - B on the same array with the output inverted (§4.3: "we could just
/// put an inverter on the output line of the accumulation array").
Result<SelectionResult> SystolicDifference(const rel::Relation& a,
                                           const rel::Relation& b,
                                           const MembershipOptions& options = {});

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_INTERSECTION_ARRAY_H_
