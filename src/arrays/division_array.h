#ifndef SYSTOLIC_ARRAYS_DIVISION_ARRAY_H_
#define SYSTOLIC_ARRAYS_DIVISION_ARRAY_H_

#include "arrays/membership.h"
#include "relational/op_specs.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// Options for the division array.
struct DivisionArrayOptions {
  /// Pulse bound per phase; 0 auto-derives.
  size_t max_cycles = 0;
};

/// Result of a division-array run.
struct DivisionArrayResult {
  /// The quotient relation, quotient values in first-occurrence order.
  rel::Relation relation;
  ArrayRunInfo info;
  /// Physical shape the run used: dividend rows (distinct quotient values)
  /// and divisor cells per row (distinct divisor values).
  size_t dividend_rows = 0;
  size_t divisor_cells = 0;

  explicit DivisionArrayResult(rel::Relation r) : relation(std::move(r)) {}
};

/// A ÷ B on the division array (§7, Figs. 7-1/7-2).
///
/// The device is the paper's restricted shape — a binary dividend divided by
/// a unary divisor over single columns. The left dividend column is preloaded
/// with the distinct dividend key values ("these elements can be identified
/// by the remove-duplicates array"); each (x, y) pair of A is pumped in from
/// the bottom, x one pulse ahead of y; matched y values stream right through
/// the divisor row, raising match flags; after the dividend has passed, an
/// AND probe is pulsed across each divisor row ("checked by doing an AND
/// across the row after the dividend passes through the array") and the rows
/// whose probe survives contribute their x to the quotient.
///
/// The general case (multi-column quotient and/or divisor, §7's
/// "straightforward" extension) is handled by the host packing each
/// sub-tuple into a single scratch code — the same reversible integer
/// encoding the paper applies to all values (§2.3) — before the pass, and
/// unpacking afterwards.
Result<DivisionArrayResult> SystolicDivision(
    const rel::Relation& a, const rel::Relation& b,
    const rel::DivisionSpec& spec, const DivisionArrayOptions& options = {});

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_DIVISION_ARRAY_H_
