#include "arrays/division_cells.h"

#include "util/logging.h"

namespace systolic {
namespace arrays {

using sim::Word;

void DividendStoreCell::Compute(size_t cycle) {
  (void)cycle;
  const Word z = z_in_->Read();
  if (!z.valid) return;
  z_out_->Write(z);
  const bool matched = z.value == stored_code_;
  match_out_->Write(Word::Boolean(matched, z.a_tag, row_));
  MarkBusy();
}

void DividendGateCell::Compute(size_t cycle) {
  (void)cycle;
  const Word y = y_in_->Read();
  if (y.valid) y_out_->Write(y);

  const Word match = match_in_->Read();
  if (!match.valid) return;
  // The schedule delays each y one pulse behind its x, so the comparison
  // result and the y it gates always coincide here (§7).
  SYSTOLIC_HW_CHECK(y.valid) << name()
                             << ": match result arrived without its y";
  SYSTOLIC_HW_CHECK_EQ(y.a_tag, match.a_tag)
      << name() << ": match result and y belong to different dividend pairs";
  if (match.AsBool()) {
    lane_out_->Write(Word{true, y.value, y.a_tag, match.b_tag});
  }
  MarkBusy();
}

void DivisorCell::Compute(size_t cycle) {
  (void)cycle;
  const Word in = lane_in_->Read();
  if (!in.valid) return;
  switch (phase_) {
    case DivisorPhase::kMatch:
      if (in.value == stored_code_) matched_ = true;
      lane_out_->Write(in);
      break;
    case DivisorPhase::kCollect:
      lane_out_->Write(
          Word::Boolean(in.AsBool() && matched_, in.a_tag, in.b_tag));
      break;
  }
  MarkBusy();
}

}  // namespace arrays
}  // namespace systolic
