#ifndef SYSTOLIC_ARRAYS_DEDUP_ARRAY_H_
#define SYSTOLIC_ARRAYS_DEDUP_ARRAY_H_

#include <vector>

#include "arrays/intersection_array.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// remove-duplicates(A) on the systolic array (§5): A is fed into *both*
/// sides of the intersection array and the initial t values of the diagonal
/// and upper triangle are forced FALSE, so tuple a_i accumulates TRUE iff it
/// equals some earlier tuple a_j (j < i). Those tuples are dropped; the
/// first occurrence of each distinct tuple survives, in input order.
///
/// The returned `selected` bits are the *kept* positions (the complement of
/// the array's duplicate flags).
Result<SelectionResult> SystolicRemoveDuplicates(
    const rel::Relation& a, const MembershipOptions& options = {});

/// A ∪ B = remove-duplicates(A + B) (§5): concatenates the operands as they
/// are "retrieved", runs the concatenation through both sides of the
/// remove-duplicates array, and keeps the flagged tuples.
Result<SelectionResult> SystolicUnion(const rel::Relation& a,
                                      const rel::Relation& b,
                                      const MembershipOptions& options = {});

/// π_f(A) (§5): drops to `columns` while the tuples are "retrieved from
/// storage", then removes duplicates from the resulting multi-relation on
/// the array.
Result<SelectionResult> SystolicProjection(
    const rel::Relation& a, const std::vector<size_t>& columns,
    const MembershipOptions& options = {});

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_DEDUP_ARRAY_H_
