#include "arrays/comparison_grid.h"

#include "util/logging.h"

namespace systolic {
namespace arrays {

namespace {

std::string CellName(const char* prefix, size_t r, size_t k) {
  return std::string(prefix) + "(" + std::to_string(r) + "," +
         std::to_string(k) + ")";
}

Status CheckColumns(const rel::Relation& relation,
                    const std::vector<size_t>& columns, size_t grid_columns) {
  if (columns.size() != grid_columns) {
    return Status::InvalidArgument(
        "feed uses " + std::to_string(columns.size()) +
        " columns but the grid has " + std::to_string(grid_columns));
  }
  for (size_t c : columns) {
    if (c >= relation.arity()) {
      return Status::OutOfRange("feed column " + std::to_string(c) +
                                " exceeds relation arity " +
                                std::to_string(relation.arity()));
    }
  }
  return Status::OK();
}

}  // namespace

ComparisonGrid::ComparisonGrid(sim::Simulator* simulator,
                               const GridConfig& config)
    : config_(config) {
  SYSTOLIC_CHECK_GT(config.rows, size_t{0});
  SYSTOLIC_CHECK_GT(config.columns, size_t{0});
  if (config.mode == FeedMode::kMarching) {
    SYSTOLIC_CHECK(config.rows % 2 == 1)
        << "marching mode requires an odd row count, got " << config.rows;
  }
  const size_t R = config.rows;
  const size_t m = config.columns;
  SYSTOLIC_CHECK(config.column_ops.empty() || config.column_ops.size() == m)
      << "column_ops must be empty or have one op per column";
  auto op_for = [&config](size_t k) {
    return config.column_ops.empty() ? config.op : config.column_ops[k];
  };

  // a_wires_[r][k]: the downward a channel entering row r (r == R exits).
  a_wires_.assign(R + 1, std::vector<sim::Wire*>(m));
  // b_wires_[r][k]: the upward b channel entering row r from below
  // (b_wires_[R] is the bottom edge; b_wires_[0] exits the top).
  b_wires_.assign(R + 1, std::vector<sim::Wire*>(m));
  // t_wires_[r][k]: the rightward t channel entering column k of row r
  // (k == 0 unused: left-most cells synthesise t; k == m is the right edge).
  t_wires_.assign(R, std::vector<sim::Wire*>(m + 1));
  auto& a_wires = a_wires_;
  auto& b_wires = b_wires_;
  auto& t_wires = t_wires_;

  const bool marching = config.mode == FeedMode::kMarching;
  for (size_t r = 0; r <= R; ++r) {
    for (size_t k = 0; k < m; ++k) {
      a_wires[r][k] = simulator->NewWire(CellName("a", r, k));
      if (marching) b_wires[r][k] = simulator->NewWire(CellName("b", r, k));
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t k = 1; k <= m; ++k) {
      t_wires[r][k] = simulator->NewWire(CellName("t", r, k));
    }
  }

  if (marching) {
    for (size_t r = 0; r < R; ++r) {
      for (size_t k = 0; k < m; ++k) {
        simulator->AddCell<ComparisonCell>(
            CellName("cmp", r, k), op_for(k), config.edge_rule,
            /*a_in=*/a_wires[r][k], /*b_in=*/b_wires[r + 1][k],
            /*t_in=*/k == 0 ? nullptr : t_wires[r][k],
            /*a_out=*/a_wires[r + 1][k], /*b_out=*/b_wires[r][k],
            /*t_out=*/t_wires[r][k + 1]);
      }
    }
  } else {
    fixed_.resize(R, std::vector<FixedComparisonCell*>(m, nullptr));
    for (size_t r = 0; r < R; ++r) {
      for (size_t k = 0; k < m; ++k) {
        fixed_[r][k] = simulator->AddCell<FixedComparisonCell>(
            CellName("fix", r, k), op_for(k), config.edge_rule,
            /*a_in=*/a_wires[r][k],
            /*t_in=*/k == 0 ? nullptr : t_wires[r][k],
            /*a_out=*/a_wires[r + 1][k],
            /*t_out=*/t_wires[r][k + 1]);
      }
    }
  }

  a_feeders_.reserve(m);
  for (size_t k = 0; k < m; ++k) {
    a_feeders_.push_back(simulator->AddInfrastructureCell<sim::StreamFeeder>(
        "feedA" + std::to_string(k), a_wires[0][k]));
  }
  if (marching) {
    b_feeders_.reserve(m);
    for (size_t k = 0; k < m; ++k) {
      b_feeders_.push_back(simulator->AddInfrastructureCell<sim::StreamFeeder>(
          "feedB" + std::to_string(k), b_wires[R][k]));
    }
  }

  right_edges_.reserve(R);
  for (size_t r = 0; r < R; ++r) {
    right_edges_.push_back(t_wires[r][m]);
  }
}

size_t ComparisonGrid::MaxATuples() const {
  if (config_.mode == FeedMode::kFixedB) {
    return SIZE_MAX;  // A streams through; any length fits.
  }
  return (config_.rows + 1) / 2;
}

size_t ComparisonGrid::MaxBTuples() const {
  if (config_.mode == FeedMode::kFixedB) {
    return config_.rows;
  }
  return (config_.rows + 1) / 2;
}

Status ComparisonGrid::FeedA(const rel::Relation& a,
                             const std::vector<size_t>& columns) {
  SYSTOLIC_RETURN_NOT_OK(CheckColumns(a, columns, config_.columns));
  if (a.num_tuples() > MaxATuples()) {
    return Status::Capacity("relation A has " + std::to_string(a.num_tuples()) +
                            " tuples; this grid fits " +
                            std::to_string(MaxATuples()) + " per pass");
  }
  const size_t spacing = config_.mode == FeedMode::kMarching ? 2 : 1;
  sim::LoadStaggeredSchedule(a, columns, sim::FeedSide::kTop, spacing,
                             /*base_cycle=*/0, a_feeders_);
  return Status::OK();
}

Status ComparisonGrid::FeedB(const rel::Relation& b,
                             const std::vector<size_t>& columns) {
  if (config_.mode != FeedMode::kMarching) {
    return Status::InvalidArgument("FeedB applies to marching mode only");
  }
  SYSTOLIC_RETURN_NOT_OK(CheckColumns(b, columns, config_.columns));
  if (b.num_tuples() > MaxBTuples()) {
    return Status::Capacity("relation B has " + std::to_string(b.num_tuples()) +
                            " tuples; this grid fits " +
                            std::to_string(MaxBTuples()) + " per pass");
  }
  sim::LoadStaggeredSchedule(b, columns, sim::FeedSide::kBottom, /*spacing=*/2,
                             /*base_cycle=*/0, b_feeders_);
  return Status::OK();
}

Status ComparisonGrid::PreloadB(const rel::Relation& b,
                                const std::vector<size_t>& columns) {
  if (config_.mode != FeedMode::kFixedB) {
    return Status::InvalidArgument("PreloadB applies to fixed mode only");
  }
  SYSTOLIC_RETURN_NOT_OK(CheckColumns(b, columns, config_.columns));
  if (b.num_tuples() > MaxBTuples()) {
    return Status::Capacity("relation B has " + std::to_string(b.num_tuples()) +
                            " tuples; this grid holds " +
                            std::to_string(MaxBTuples()));
  }
  for (size_t j = 0; j < b.num_tuples(); ++j) {
    for (size_t k = 0; k < columns.size(); ++k) {
      fixed_[j][k]->Preload(b.tuple(j)[columns[k]],
                            static_cast<sim::TupleTag>(j));
    }
  }
  return Status::OK();
}

}  // namespace arrays
}  // namespace systolic
