#include "arrays/bit_serial.h"

#include <string>
#include <vector>

namespace systolic {
namespace arrays {

namespace {

/// The shared one-bit schema for a decomposition of `source` at `bits` bits.
rel::Schema BitSchema(const rel::Schema& source, size_t bits) {
  std::vector<rel::Column> columns;
  columns.reserve(source.num_columns() * bits);
  for (size_t c = 0; c < source.num_columns(); ++c) {
    for (size_t k = 0; k < bits; ++k) {
      columns.push_back(rel::Column{
          source.column(c).name + ".b" + std::to_string(k),
          rel::Domain::Make(source.column(c).domain->name() + ".bit",
                            rel::ValueType::kInt64)});
    }
  }
  return rel::Schema(std::move(columns));
}

Status CheckFits(const rel::Relation& relation, size_t bits) {
  if (bits == 0 || bits > 63) {
    return Status::InvalidArgument("bits must be in 1..63");
  }
  const int64_t limit = int64_t{1} << bits;
  for (const rel::Tuple& t : relation.tuples()) {
    for (rel::Code code : t) {
      if (code < 0 || code >= limit) {
        return Status::InvalidArgument(
            "element code " + std::to_string(code) + " does not fit in " +
            std::to_string(bits) + " unsigned bits");
      }
    }
  }
  return Status::OK();
}

Status AppendDecomposed(const rel::Relation& source, size_t bits,
                        rel::Relation* out) {
  for (const rel::Tuple& t : source.tuples()) {
    rel::Tuple wide;
    wide.reserve(t.size() * bits);
    for (rel::Code code : t) {
      for (size_t k = 0; k < bits; ++k) {
        wide.push_back((code >> k) & 1);
      }
    }
    SYSTOLIC_RETURN_NOT_OK(out->Append(std::move(wide)));
  }
  return Status::OK();
}

}  // namespace

Result<rel::Relation> DecomposeToBits(const rel::Relation& relation,
                                      size_t bits) {
  SYSTOLIC_RETURN_NOT_OK(CheckFits(relation, bits));
  if (relation.arity() == 0) {
    return Status::InvalidArgument("cannot decompose a zero-column relation");
  }
  rel::Relation out(BitSchema(relation.schema(), bits), relation.kind());
  SYSTOLIC_RETURN_NOT_OK(AppendDecomposed(relation, bits, &out));
  return out;
}

Result<BitDecomposedPair> DecomposePairToBits(const rel::Relation& a,
                                              const rel::Relation& b,
                                              size_t bits) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  SYSTOLIC_RETURN_NOT_OK(CheckFits(a, bits));
  SYSTOLIC_RETURN_NOT_OK(CheckFits(b, bits));
  if (a.arity() == 0) {
    return Status::InvalidArgument("cannot decompose a zero-column relation");
  }
  const rel::Schema shared = BitSchema(a.schema(), bits);
  rel::Relation out_a(shared, a.kind());
  rel::Relation out_b(shared, b.kind());
  SYSTOLIC_RETURN_NOT_OK(AppendDecomposed(a, bits, &out_a));
  SYSTOLIC_RETURN_NOT_OK(AppendDecomposed(b, bits, &out_b));
  return BitDecomposedPair{std::move(out_a), std::move(out_b)};
}

size_t BitLevelCellCount(size_t rows, size_t columns, size_t bits) {
  return rows * columns * bits;
}

Result<size_t> MinimumBitsFor(const rel::Relation& relation) {
  size_t bits = 1;
  for (const rel::Tuple& t : relation.tuples()) {
    for (rel::Code code : t) {
      if (code < 0) {
        return Status::InvalidArgument(
            "bit decomposition requires non-negative codes, got " +
            std::to_string(code));
      }
      size_t needed = 1;
      while ((code >> needed) != 0) ++needed;
      bits = std::max(bits, needed);
    }
  }
  return bits;
}

}  // namespace arrays
}  // namespace systolic
