#include "arrays/membership.h"

#include <algorithm>

#include "arrays/accumulation_column.h"

namespace systolic {
namespace arrays {

size_t DefaultMaxCycles(size_t n_a, size_t n_b, size_t columns, size_t rows) {
  // Completion is ~ 2*max(n) + columns + 2*rows pulses; quadruple plus slack
  // so a genuine hang is caught without false alarms.
  const size_t n = std::max(n_a, n_b);
  return 4 * (2 * n + columns + 2 * rows) + 64;
}

Result<BitVector> RunMembership(const rel::Relation& a, const rel::Relation& b,
                                const std::vector<size_t>& a_columns,
                                const std::vector<size_t>& b_columns,
                                EdgeRule edge_rule,
                                const MembershipOptions& options,
                                ArrayRunInfo* info) {
  if (a_columns.empty() || a_columns.size() != b_columns.size()) {
    return Status::InvalidArgument(
        "membership query needs equal, non-empty column lists");
  }
  if (a.num_tuples() == 0) {
    return BitVector(0);
  }

  size_t rows = options.rows;
  if (rows == 0) {
    rows = options.mode == FeedMode::kMarching
               ? ComparisonGrid::RowsForMarching(
                     std::max(a.num_tuples(), b.num_tuples()))
               : std::max<size_t>(1, b.num_tuples());
  }

  sim::Simulator simulator;
  GridConfig config;
  config.rows = rows;
  config.columns = a_columns.size();
  config.op = rel::ComparisonOp::kEq;
  config.edge_rule = edge_rule;
  config.mode = options.mode;
  ComparisonGrid grid(&simulator, config);
  AccumulationColumn accumulator(&simulator, grid.right_edges());

  SYSTOLIC_RETURN_NOT_OK(grid.FeedA(a, a_columns));
  if (options.mode == FeedMode::kMarching) {
    SYSTOLIC_RETURN_NOT_OK(grid.FeedB(b, b_columns));
  } else {
    SYSTOLIC_RETURN_NOT_OK(grid.PreloadB(b, b_columns));
  }

  const size_t max_cycles =
      options.max_cycles != 0
          ? options.max_cycles
          : DefaultMaxCycles(a.num_tuples(), b.num_tuples(), config.columns,
                             rows);
  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles,
                            simulator.RunUntilQuiescent(max_cycles));

  if (info != nullptr) {
    info->cycles = cycles;
    info->sim = simulator.Stats();
  }
  return accumulator.Collect(a.num_tuples());
}

}  // namespace arrays
}  // namespace systolic
