#ifndef SYSTOLIC_ARRAYS_COMPARISON_GRID_H_
#define SYSTOLIC_ARRAYS_COMPARISON_GRID_H_

#include <vector>

#include "arrays/comparison_cell.h"
#include "arrays/edge_rule.h"
#include "relational/compare.h"
#include "relational/relation.h"
#include "systolic/feeder.h"
#include "systolic/schedule.h"
#include "systolic/simulator.h"
#include "util/status.h"

namespace systolic {
namespace arrays {

/// How relation B traverses the grid.
enum class FeedMode {
  /// Both relations march through each other (§3.2): A down, B up, tuples
  /// two pulses apart. Every pair (a_i, b_j) meets at row j-i+(rows-1)/2,
  /// so a grid of R rows handles operands of up to (R+1)/2 tuples each, and
  /// at most half the cells are busy on any pulse (§8).
  kMarching,
  /// B is preloaded, one tuple per row, and only A marches (§8's
  /// full-utilisation variant). Tuples of A are one pulse apart; the grid
  /// handles any |A| but at most `rows` tuples of B per pass.
  kFixedB,
};

/// Feed-mode policy for the engine: a concrete mode, or kAuto to let the
/// engine pick per operation by modeled pulse count (fixed-B halves both
/// the tuple spacing and the required rows, so it wins whenever B fits the
/// device or tiles no worse than marching; marching needs no preload step).
enum class FeedModePolicy {
  kMarching,
  kFixedB,
  kAuto,
};

/// Static configuration of a comparison grid.
struct GridConfig {
  /// Physical row count. Must be odd in kMarching mode (the meeting-row
  /// formula j-i+(rows-1)/2 needs integer midpoint; with even rows,
  /// opposite-moving tuples swap on wires without ever sharing a cell).
  size_t rows = 0;
  /// Physical column count = elements compared per tuple (m, or the number
  /// of join columns for a join array).
  size_t columns = 0;
  /// Per-cell comparison: kEq for the comparison/intersection/dedup arrays,
  /// any op for non-equi-join arrays (§6.3.2).
  rel::ComparisonOp op = rel::ComparisonOp::kEq;
  /// Optional per-column comparisons (§6.3.2: the operation "might be
  /// preloaded into the array"); when non-empty it must have `columns`
  /// entries and overrides `op` column by column. Used by the selection
  /// array for mixed-predicate conjunctions.
  std::vector<rel::ComparisonOp> column_ops;
  /// Initial-t synthesis at the left edge (§4 vs §5).
  EdgeRule edge_rule = EdgeRule::kAllTrue;
  FeedMode mode = FeedMode::kMarching;
};

/// The paper's two-dimensional comparison array (Fig. 3-3): `rows` stacked
/// linear comparison arrays of `columns` cells. Builds all cells and wires
/// inside a caller-owned Simulator and provides the input feeders and the
/// right-edge t outputs that downstream modules (accumulation column, join
/// sinks) attach to.
class ComparisonGrid {
 public:
  /// Builds the grid in `simulator`. Fatal on invalid config (zero
  /// dimensions; even rows in marching mode).
  ComparisonGrid(sim::Simulator* simulator, const GridConfig& config);

  const GridConfig& config() const { return config_; }

  /// Schedules relation A (restricted to `columns`, which must match the
  /// grid width) into the top feeders with the mode's tuple spacing.
  /// Fails with Capacity if A exceeds MaxATuples().
  Status FeedA(const rel::Relation& a, const std::vector<size_t>& columns);

  /// Marching mode: schedules relation B into the bottom feeders.
  /// Fails with Capacity if B exceeds MaxBTuples().
  Status FeedB(const rel::Relation& b, const std::vector<size_t>& columns);

  /// Fixed mode: stores tuple j of B into row j's cells. Fails with
  /// Capacity if B exceeds `rows`.
  Status PreloadB(const rel::Relation& b, const std::vector<size_t>& columns);

  /// The t output wire at the right edge of row `r`.
  sim::Wire* right_edge(size_t r) const { return right_edges_.at(r); }
  const std::vector<sim::Wire*>& right_edges() const { return right_edges_; }

  /// Interior observation points, for tracing and visualisation (reading a
  /// wire never perturbs the computation).
  /// The downward a wire entering row `r` (r == rows() is the bottom exit).
  sim::Wire* a_wire(size_t r, size_t k) const { return a_wires_.at(r).at(k); }
  /// The upward b wire entering row `r` from below (marching mode only;
  /// r == rows() is the bottom edge, r == 0 the top exit).
  sim::Wire* b_wire(size_t r, size_t k) const { return b_wires_.at(r).at(k); }
  /// The rightward t wire entering column `k` of row `r` (k in 1..columns;
  /// k == columns is the right edge).
  sim::Wire* t_wire(size_t r, size_t k) const { return t_wires_.at(r).at(k); }

  /// Operand capacity per pass.
  size_t MaxATuples() const;
  size_t MaxBTuples() const;

  /// Smallest legal (odd) row count for marching operands of up to `n`
  /// tuples each: 2n-1 (so the meeting rows j-i+(R-1)/2 stay in range).
  static size_t RowsForMarching(size_t n) { return n == 0 ? 1 : 2 * n - 1; }

 private:
  GridConfig config_;
  std::vector<sim::StreamFeeder*> a_feeders_;
  std::vector<sim::StreamFeeder*> b_feeders_;             // marching only
  std::vector<std::vector<FixedComparisonCell*>> fixed_;  // fixed only
  std::vector<sim::Wire*> right_edges_;
  std::vector<std::vector<sim::Wire*>> a_wires_;
  std::vector<std::vector<sim::Wire*>> b_wires_;
  std::vector<std::vector<sim::Wire*>> t_wires_;
};

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_COMPARISON_GRID_H_
