#ifndef SYSTOLIC_ARRAYS_DIVISION_CELLS_H_
#define SYSTOLIC_ARRAYS_DIVISION_CELLS_H_

#include <string>

#include "relational/domain.h"
#include "systolic/cell.h"
#include "systolic/wire.h"

namespace systolic {
namespace arrays {

/// Left-column cell of the dividend array (§7, Fig. 7-2): stores one
/// distinct element x_p of the dividend's key column. Each (x, y) pair of the
/// dividend marches up through the array; when the x component passes this
/// cell it is compared with the stored element and the boolean result is sent
/// right, timed to meet the associated y in the neighbouring column.
class DividendStoreCell : public sim::Cell {
 public:
  DividendStoreCell(std::string name, sim::Wire* z_in, sim::Wire* z_out,
                    sim::Wire* match_out)
      : Cell(std::move(name)), z_in_(z_in), z_out_(z_out),
        match_out_(match_out) {}

  /// Stores the distinct dividend element for this row, with its row index.
  void Preload(rel::Code code, sim::TupleTag row) {
    stored_code_ = code;
    row_ = row;
  }

  void Compute(size_t cycle) override;

 private:
  sim::Wire* z_in_;
  sim::Wire* z_out_;
  sim::Wire* match_out_;
  rel::Code stored_code_ = 0;
  sim::TupleTag row_ = sim::kNoTag;
};

/// Right-column cell of the dividend array: receives the comparison result
/// from the left "just as the associated y arrives" from below; if the result
/// is TRUE the y value is emitted rightwards into this row's divisor array,
/// "otherwise, some null value is output" — our null is a bubble.
class DividendGateCell : public sim::Cell {
 public:
  DividendGateCell(std::string name, sim::Wire* y_in, sim::Wire* y_out,
                   sim::Wire* match_in, sim::Wire* lane_out)
      : Cell(std::move(name)), y_in_(y_in), y_out_(y_out),
        match_in_(match_in), lane_out_(lane_out) {}

  void Compute(size_t cycle) override;

 private:
  sim::Wire* y_in_;
  sim::Wire* y_out_;
  sim::Wire* match_in_;
  sim::Wire* lane_out_;
};

/// Execution phase of the divisor cells: first the dividend's y values
/// stream through and set per-cell match flags; then — "after the dividend
/// passes through the array" (§7) — a probe is ANDed across each row to read
/// out whether every stored divisor element was covered. The phase flip is
/// the global control signal a hardware implementation would broadcast.
enum class DivisorPhase {
  kMatch,
  kCollect,
};

/// One cell of a divisor-array row (§7, Fig. 7-2): stores one element of the
/// divisor B. In kMatch phase it raises its sticky flag when a passing y
/// equals the stored element and forwards the y to the next cell. In
/// kCollect phase it ANDs its flag into the passing probe word.
class DivisorCell : public sim::Cell {
 public:
  DivisorCell(std::string name, sim::Wire* lane_in, sim::Wire* lane_out)
      : Cell(std::move(name)), lane_in_(lane_in), lane_out_(lane_out) {}

  void Preload(rel::Code code) { stored_code_ = code; }
  void SetPhase(DivisorPhase phase) { phase_ = phase; }
  bool matched() const { return matched_; }

  void Compute(size_t cycle) override;

 private:
  sim::Wire* lane_in_;
  sim::Wire* lane_out_;
  rel::Code stored_code_ = 0;
  DivisorPhase phase_ = DivisorPhase::kMatch;
  bool matched_ = false;
};

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_DIVISION_CELLS_H_
