#include "arrays/accumulation_column.h"

#include <string>

#include "util/logging.h"

namespace systolic {
namespace arrays {

AccumulationColumn::AccumulationColumn(
    sim::Simulator* simulator, const std::vector<sim::Wire*>& left_inputs) {
  SYSTOLIC_CHECK(!left_inputs.empty());
  const size_t rows = left_inputs.size();
  std::vector<sim::Wire*> down(rows + 1, nullptr);
  for (size_t r = 1; r <= rows; ++r) {
    down[r] = simulator->NewWire("acc" + std::to_string(r));
  }
  for (size_t r = 0; r < rows; ++r) {
    simulator->AddCell<AccumulationCell>("accum" + std::to_string(r),
                                         /*left_in=*/left_inputs[r],
                                         /*top_in=*/r == 0 ? nullptr : down[r],
                                         /*down_out=*/down[r + 1]);
  }
  sink_ = simulator->AddInfrastructureCell<sim::SinkCell>("acc-sink",
                                                          down[rows]);
}

Result<BitVector> AccumulationColumn::Collect(size_t num_a_tuples) const {
  BitVector bits(num_a_tuples, false);
  BitVector seen(num_a_tuples, false);
  for (const auto& [cycle, word] : sink_->received()) {
    if (word.a_tag < 0 ||
        static_cast<size_t>(word.a_tag) >= num_a_tuples) {
      return Status::Internal("accumulation output carries tuple tag " +
                              std::to_string(word.a_tag) + " outside [0," +
                              std::to_string(num_a_tuples) + ")");
    }
    const size_t i = static_cast<size_t>(word.a_tag);
    if (seen.Get(i)) {
      return Status::Internal("tuple " + std::to_string(i) +
                              " produced two accumulation results");
    }
    seen.Set(i, true);
    bits.Set(i, word.AsBool());
  }
  return bits;
}

}  // namespace arrays
}  // namespace systolic
