#ifndef SYSTOLIC_ARRAYS_JOIN_ARRAY_H_
#define SYSTOLIC_ARRAYS_JOIN_ARRAY_H_

#include <utility>
#include <vector>

#include "arrays/membership.h"
#include "relational/op_specs.h"
#include "relational/relation.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// Options for the join array.
struct JoinArrayOptions {
  /// Feed discipline, as for the membership arrays.
  FeedMode mode = FeedMode::kMarching;
  /// Physical rows; 0 auto-sizes. Too-small fails with Capacity.
  size_t rows = 0;
  /// Pulse bound; 0 auto-derives.
  size_t max_cycles = 0;
};

/// Result of a join-array run.
struct JoinArrayResult {
  /// The materialised join, concatenated per the paper's |_{CA,CB} operator.
  rel::Relation relation;
  /// The TRUE entries of the t matrix, as (i, j) pairs in (i, j)-lexicographic
  /// order — "for each t_ij that has the value TRUE (and for only those), we
  /// simply retrieve a_i and b_j and concatenate them" (§6.2).
  std::vector<std::pair<size_t, size_t>> matches;
  ArrayRunInfo info;

  explicit JoinArrayResult(rel::Relation r) : relation(std::move(r)) {}
};

/// A ⋈ B on the join array (§6, Fig. 6-1): only the join columns of the two
/// relations pass through a grid whose width is the number of join-column
/// pairs (one column for the single-column join of §6.2, several for §6.3.1)
/// and whose cells apply `spec.op` (equality, or any comparison for the
/// non-equi-joins of §6.3.2). The t_ij are collected individually at the
/// right edge — "unlike some of the operations discussed earlier ... we do
/// not perform further accumulation operations on them" — and the host
/// materialises the result tuples from the TRUE entries.
Result<JoinArrayResult> SystolicJoin(const rel::Relation& a,
                                     const rel::Relation& b,
                                     const rel::JoinSpec& spec,
                                     const JoinArrayOptions& options = {});

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_JOIN_ARRAY_H_
