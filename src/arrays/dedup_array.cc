#include "arrays/dedup_array.h"

#include "arrays/membership.h"
#include "systolic/schedule.h"

namespace systolic {
namespace arrays {

Result<SelectionResult> SystolicRemoveDuplicates(
    const rel::Relation& a, const MembershipOptions& options) {
  if (a.arity() == 0) {
    return Status::InvalidArgument("operand must have at least one column");
  }
  ArrayRunInfo info;
  SYSTOLIC_ASSIGN_OR_RETURN(
      BitVector duplicate,
      RunMembership(a, a, sim::AllColumns(a), sim::AllColumns(a),
                    EdgeRule::kStrictLowerTriangle, options, &info));
  duplicate.FlipAll();  // keep the non-duplicates
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Relation out,
                            a.Filter(duplicate, rel::RelationKind::kSet));
  SelectionResult result(std::move(out));
  result.selected = std::move(duplicate);
  result.info = info;
  return result;
}

Result<SelectionResult> SystolicUnion(const rel::Relation& a,
                                      const rel::Relation& b,
                                      const MembershipOptions& options) {
  SYSTOLIC_RETURN_NOT_OK(a.schema().CheckUnionCompatible(b.schema()));
  rel::Relation concatenated(a.schema(), rel::RelationKind::kMulti);
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(a));
  SYSTOLIC_RETURN_NOT_OK(concatenated.Concatenate(b));
  return SystolicRemoveDuplicates(concatenated, options);
}

Result<SelectionResult> SystolicProjection(const rel::Relation& a,
                                           const std::vector<size_t>& columns,
                                           const MembershipOptions& options) {
  SYSTOLIC_ASSIGN_OR_RETURN(rel::Relation narrowed, a.ProjectColumns(columns));
  return SystolicRemoveDuplicates(narrowed, options);
}

}  // namespace arrays
}  // namespace systolic
