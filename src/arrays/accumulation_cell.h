#ifndef SYSTOLIC_ARRAYS_ACCUMULATION_CELL_H_
#define SYSTOLIC_ARRAYS_ACCUMULATION_CELL_H_

#include <string>

#include "systolic/cell.h"
#include "systolic/wire.h"

namespace systolic {
namespace arrays {

/// The paper's accumulation processor (§4.2, Fig. 4-1): at each pulse it
/// takes its left input (a t_ij leaving the comparison array), ORs it with
/// its top input (the running t_i travelling down the accumulation column),
/// and passes the result to the processor below. A processor with only a top
/// input "simply passes on the t_i that it has"; one with only a left input
/// starts the running value (equivalently, the paper's alternative of
/// injecting an initial FALSE from the top — FALSE OR x == x).
///
/// The input schedule guarantees the running value of tuple a_i reaches row
/// r at exactly the pulse its t_{i,r-related} contribution arrives from the
/// left (derived in §3.2's timing; checked here via tuple tags).
class AccumulationCell : public sim::Cell {
 public:
  AccumulationCell(std::string name, sim::Wire* left_in, sim::Wire* top_in,
                   sim::Wire* down_out)
      : Cell(std::move(name)),
        left_in_(left_in),
        top_in_(top_in),
        down_out_(down_out) {}

  void Compute(size_t cycle) override;

 private:
  sim::Wire* left_in_;
  sim::Wire* top_in_;  // null for the top-most cell
  sim::Wire* down_out_;
};

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_ACCUMULATION_CELL_H_
