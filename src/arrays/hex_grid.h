#ifndef SYSTOLIC_ARRAYS_HEX_GRID_H_
#define SYSTOLIC_ARRAYS_HEX_GRID_H_

#include <utility>
#include <vector>

#include "arrays/edge_rule.h"
#include "arrays/membership.h"
#include "relational/relation.h"
#include "util/bitvector.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// The hexagonally-connected comparison array — §2.1: "hexagonally connected
/// arrays as in [5] would work as well in many instances". [5] is
/// Kung & Leiserson's systolic-arrays paper, whose hex array computes matrix
/// products; tuple comparison is the same recurrence with (×, +) replaced by
/// (==, AND):  t_ij = AND_k (a_ik == b_jk),  i.e.  T = A ⊙ Bᵀ.
///
/// All three streams move, in directions 120° apart on the lattice
/// (here embedded on integer coordinates as dA=(1,0) east, dB=(0,1) north,
/// dC=(-1,-1) southwest, dA+dB+dC=0):
///   * a_ik travels east along lattice row y=i-k, entering at pulse i+k;
///   * b_jk travels north along column x=j-k, entering at pulse j+k;
///   * the partial result t_ij travels southwest, seeded with the edge
///     rule's initial value, picking up its k-th comparison at cell
///     (j-k, i-k) on pulse i+j+k.
/// The schedule is collision-free: any two streams coinciding in a cell are
/// always part of a proper three-way rendezvous (proved in the .cc header
/// comment, checked at runtime via tags). Cells are busy every third pulse
/// in the active band — the classic hex-array 1/3 duty cycle.
///
/// Completed t_ij words drain across the southwest boundary, where sinks
/// collect them; the host ORs row i's entries into the membership bit t_i
/// (the role the §4 accumulation column plays for the orthogonal array).
struct HexResult {
  /// Bit i = OR_j (t_ij under the edge rule) — as RunMembership returns.
  BitVector membership;
  /// The TRUE T-matrix entries, (i, j)-lexicographic (join-style use).
  std::vector<std::pair<size_t, size_t>> true_pairs;
  ArrayRunInfo info;
};

/// Runs all |A|x|B| tuple comparisons on the hex array. Operands must have
/// equal non-zero arity. Single pass for any sizes.
Result<HexResult> HexCompare(const rel::Relation& a, const rel::Relation& b,
                             EdgeRule edge_rule);

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_HEX_GRID_H_
