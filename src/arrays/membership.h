#ifndef SYSTOLIC_ARRAYS_MEMBERSHIP_H_
#define SYSTOLIC_ARRAYS_MEMBERSHIP_H_

#include <vector>

#include "arrays/comparison_grid.h"
#include "relational/relation.h"
#include "systolic/simulator.h"
#include "util/bitvector.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// Per-run observability shared by all array drivers.
struct ArrayRunInfo {
  /// Pulses from the first input word to quiescence.
  size_t cycles = 0;
  /// Cell counts and activity (for the §8 utilisation experiments).
  sim::SimStats sim;

  /// Accumulates another pass (tiled execution runs several).
  void Accumulate(const ArrayRunInfo& other) {
    cycles += other.cycles;
    sim.cycles += other.sim.cycles;
    sim.busy_cell_cycles += other.sim.busy_cell_cycles;
    sim.num_compute_cells =
        std::max(sim.num_compute_cells, other.sim.num_compute_cells);
  }
};

/// Options shared by the membership-style arrays (intersection, difference,
/// remove-duplicates): one pass through a comparison grid plus accumulation
/// column.
struct MembershipOptions {
  /// kMarching reproduces §3/§4 exactly; kFixedB is §8's full-utilisation
  /// variant with B preloaded.
  FeedMode mode = FeedMode::kMarching;
  /// Physical grid rows; 0 auto-sizes to fit the operands in one pass.
  /// If nonzero and too small for the operands, the run fails with Capacity
  /// (callers tile via the engine, §8's decomposition).
  size_t rows = 0;
  /// Safety bound on pulses; 0 derives a generous bound from the operand
  /// sizes. Exceeding it fails with Internal.
  size_t max_cycles = 0;
};

/// Runs one membership query through the hardware: feeds A (restricted to
/// `a_columns`) from the top and B (restricted to `b_columns`) from the
/// bottom (or preloaded, per mode) of a comparison grid with the given edge
/// rule, accumulates each row of the t matrix, and returns bit i =
///   OR_j ( t_ij^initial AND a_i == b_j )  over the fed columns.
///
/// With EdgeRule::kAllTrue this is §4's t_i (a_i appears in B); with
/// kStrictLowerTriangle and B == A it is §5's duplicate flag.
Result<BitVector> RunMembership(const rel::Relation& a, const rel::Relation& b,
                                const std::vector<size_t>& a_columns,
                                const std::vector<size_t>& b_columns,
                                EdgeRule edge_rule,
                                const MembershipOptions& options,
                                ArrayRunInfo* info);

/// Derives the automatic pulse bound used when options.max_cycles == 0.
size_t DefaultMaxCycles(size_t n_a, size_t n_b, size_t columns, size_t rows);

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_MEMBERSHIP_H_
