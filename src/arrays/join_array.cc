#include "arrays/join_array.h"

#include <algorithm>

#include "arrays/comparison_grid.h"
#include "systolic/feeder.h"
#include "systolic/simulator.h"

namespace systolic {
namespace arrays {

Result<JoinArrayResult> SystolicJoin(const rel::Relation& a,
                                     const rel::Relation& b,
                                     const rel::JoinSpec& spec,
                                     const JoinArrayOptions& options) {
  SYSTOLIC_RETURN_NOT_OK(rel::ValidateJoinSpec(a.schema(), b.schema(), spec));
  SYSTOLIC_ASSIGN_OR_RETURN(
      rel::Schema out_schema,
      rel::JoinOutputSchema(a.schema(), b.schema(), spec));
  JoinArrayResult result(
      rel::Relation(std::move(out_schema), rel::RelationKind::kMulti));
  if (a.num_tuples() == 0 || b.num_tuples() == 0) {
    return result;
  }

  size_t rows = options.rows;
  if (rows == 0) {
    rows = options.mode == FeedMode::kMarching
               ? ComparisonGrid::RowsForMarching(
                     std::max(a.num_tuples(), b.num_tuples()))
               : b.num_tuples();
  }

  sim::Simulator simulator;
  GridConfig config;
  config.rows = rows;
  config.columns = spec.left_columns.size();
  config.op = spec.op;
  config.edge_rule = EdgeRule::kAllTrue;
  config.mode = options.mode;
  ComparisonGrid grid(&simulator, config);

  // The t_ij are used individually: a sink per row collects them as they
  // leave the right edge.
  std::vector<sim::SinkCell*> sinks;
  sinks.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    sinks.push_back(simulator.AddInfrastructureCell<sim::SinkCell>(
        "join-sink" + std::to_string(r), grid.right_edge(r)));
  }

  SYSTOLIC_RETURN_NOT_OK(grid.FeedA(a, spec.left_columns));
  if (options.mode == FeedMode::kMarching) {
    SYSTOLIC_RETURN_NOT_OK(grid.FeedB(b, spec.right_columns));
  } else {
    SYSTOLIC_RETURN_NOT_OK(grid.PreloadB(b, spec.right_columns));
  }

  const size_t max_cycles =
      options.max_cycles != 0
          ? options.max_cycles
          : DefaultMaxCycles(a.num_tuples(), b.num_tuples(), config.columns,
                             rows);
  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles,
                            simulator.RunUntilQuiescent(max_cycles));
  result.info.cycles = cycles;
  result.info.sim = simulator.Stats();

  for (const sim::SinkCell* sink : sinks) {
    for (const auto& [cycle, word] : sink->received()) {
      if (!word.AsBool()) continue;
      if (word.a_tag < 0 || word.b_tag < 0 ||
          static_cast<size_t>(word.a_tag) >= a.num_tuples() ||
          static_cast<size_t>(word.b_tag) >= b.num_tuples()) {
        return Status::Internal("join array emitted out-of-range tags (" +
                                std::to_string(word.a_tag) + "," +
                                std::to_string(word.b_tag) + ")");
      }
      result.matches.emplace_back(static_cast<size_t>(word.a_tag),
                                  static_cast<size_t>(word.b_tag));
    }
  }
  std::sort(result.matches.begin(), result.matches.end());

  for (const auto& [i, j] : result.matches) {
    SYSTOLIC_RETURN_NOT_OK(result.relation.Append(
        rel::JoinConcatenate(a.tuple(i), b.tuple(j), spec)));
  }
  return result;
}

}  // namespace arrays
}  // namespace systolic
