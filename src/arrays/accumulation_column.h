#ifndef SYSTOLIC_ARRAYS_ACCUMULATION_COLUMN_H_
#define SYSTOLIC_ARRAYS_ACCUMULATION_COLUMN_H_

#include <vector>

#include "arrays/accumulation_cell.h"
#include "systolic/feeder.h"
#include "systolic/simulator.h"
#include "util/bitvector.h"
#include "util/result.h"

namespace systolic {
namespace arrays {

/// The linear accumulation array at the right of a comparison grid (§4,
/// Fig. 4-1): one accumulation cell per grid row, chained top to bottom. Each
/// cell ORs the t_ij arriving from its row into the running t_i travelling
/// down the column; the bottom emits each tuple's final t_i into a sink.
class AccumulationColumn {
 public:
  /// Builds one cell per entry of `left_inputs` (the grid's right-edge
  /// wires) inside `simulator`.
  AccumulationColumn(sim::Simulator* simulator,
                     const std::vector<sim::Wire*>& left_inputs);

  /// After the simulation has quiesced: assembles the per-tuple results into
  /// a BitVector of `num_a_tuples` bits (bit i = t_i). Tuples that produced
  /// no output (possible only when the other operand was empty) read FALSE.
  /// Fails with Internal if a tuple produced two results or a tag is out of
  /// range — both indicate a scheduling bug.
  Result<BitVector> Collect(size_t num_a_tuples) const;

 private:
  sim::SinkCell* sink_ = nullptr;
};

}  // namespace arrays
}  // namespace systolic

#endif  // SYSTOLIC_ARRAYS_ACCUMULATION_COLUMN_H_
