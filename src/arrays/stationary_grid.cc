#include "arrays/stationary_grid.h"

#include "systolic/feeder.h"
#include "systolic/simulator.h"
#include "util/logging.h"

namespace systolic {
namespace arrays {

using sim::Word;

bool StationaryCell::Contribution() const {
  if (!touched_) return false;
  switch (edge_rule_) {
    case EdgeRule::kAllTrue:
      return t_;
    case EdgeRule::kStrictLowerTriangle:
      return t_ && b_tag_ < a_tag_;
  }
  return t_;
}

void StationaryCell::Compute(size_t cycle) {
  (void)cycle;
  const Word x = x_in_->Read();
  const Word y = y_in_->Read();
  if (x.valid && x_out_ != nullptr) x_out_->Write(x);
  if (y.valid && y_out_ != nullptr) y_out_->Write(y);

  // Equal-width tuples arrive in lock-step; a lone element is a schedule bug.
  SYSTOLIC_HW_CHECK(x.valid == y.valid)
      << name() << ": unpaired element in stationary grid";
  if (x.valid) {
    if (touched_) {
      SYSTOLIC_HW_CHECK(a_tag_ == x.a_tag && b_tag_ == y.b_tag)
          << name() << ": cell visited by a second tuple pair";
    } else {
      a_tag_ = x.a_tag;
      b_tag_ = y.b_tag;
      touched_ = true;
    }
    t_ = t_ && (x.value == y.value);
    MarkBusy();
  }

  const Word probe = probe_in_ != nullptr ? probe_in_->Read() : Word::Bubble();
  if (probe.valid) {
    probe_out_->Write(
        Word::Boolean(probe.AsBool() || Contribution(), probe.a_tag,
                      sim::kNoTag));
  }
}

Result<BitVector> StationaryMembership(const rel::Relation& a,
                                       const rel::Relation& b,
                                       EdgeRule edge_rule, ArrayRunInfo* info) {
  if (a.arity() == 0 || a.arity() != b.arity()) {
    return Status::InvalidArgument(
        "stationary grid requires equal, non-zero tuple widths");
  }
  BitVector bits(a.num_tuples(), false);
  if (a.num_tuples() == 0) return bits;
  if (b.num_tuples() == 0) {
    if (info != nullptr) *info = ArrayRunInfo{};
    return bits;
  }
  const size_t n_a = a.num_tuples();
  const size_t n_b = b.num_tuples();
  const size_t m = a.arity();

  sim::Simulator simulator;
  // x[i][j]: west->east element lane entering cell (i, j); x[i][n_b] unused
  // (east edge drops the stream). y[i][j]: south->north lane entering cell
  // (i, j); y[n_a][j] unused. probe[i][j]: west->east OR chain.
  std::vector<std::vector<sim::Wire*>> x(n_a, std::vector<sim::Wire*>(n_b));
  std::vector<std::vector<sim::Wire*>> y(n_a + 1,
                                         std::vector<sim::Wire*>(n_b));
  std::vector<std::vector<sim::Wire*>> probe(n_a,
                                             std::vector<sim::Wire*>(n_b + 1));
  for (size_t i = 0; i < n_a; ++i) {
    for (size_t j = 0; j < n_b; ++j) {
      x[i][j] = simulator.NewWire("x" + std::to_string(i) + "," +
                                  std::to_string(j));
      y[i][j] = simulator.NewWire("y" + std::to_string(i) + "," +
                                  std::to_string(j));
      probe[i][j + 1] = simulator.NewWire("p" + std::to_string(i) + "," +
                                          std::to_string(j + 1));
    }
    probe[i][0] = simulator.NewWire("p" + std::to_string(i) + ",0");
  }
  for (size_t j = 0; j < n_b; ++j) {
    y[n_a][j] = simulator.NewWire("ytop" + std::to_string(j));
  }

  for (size_t i = 0; i < n_a; ++i) {
    for (size_t j = 0; j < n_b; ++j) {
      simulator.AddCell<StationaryCell>(
          "st(" + std::to_string(i) + "," + std::to_string(j) + ")",
          edge_rule,
          /*x_in=*/x[i][j],
          /*x_out=*/j + 1 < n_b ? x[i][j + 1] : nullptr,
          /*y_in=*/y[i][j],
          /*y_out=*/y[i + 1][j],
          /*probe_in=*/probe[i][j],
          /*probe_out=*/probe[i][j + 1]);
    }
  }

  std::vector<sim::StreamFeeder*> a_feeders(n_a);
  std::vector<sim::StreamFeeder*> probe_feeders(n_a);
  std::vector<sim::SinkCell*> sinks(n_a);
  for (size_t i = 0; i < n_a; ++i) {
    a_feeders[i] = simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "fa" + std::to_string(i), x[i][0]);
    probe_feeders[i] = simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "fp" + std::to_string(i), probe[i][0]);
    sinks[i] = simulator.AddInfrastructureCell<sim::SinkCell>(
        "row" + std::to_string(i), probe[i][n_b]);
  }
  std::vector<sim::StreamFeeder*> b_feeders(n_b);
  for (size_t j = 0; j < n_b; ++j) {
    b_feeders[j] = simulator.AddInfrastructureCell<sim::StreamFeeder>(
        "fb" + std::to_string(j), y[0][j]);
  }

  // Skewed feeds: element k of A tuple i at pulse i+k into row i; element k
  // of B tuple j at pulse j+k into column j; they meet in cell (i, j) at
  // pulse i+j+k+1.
  for (size_t i = 0; i < n_a; ++i) {
    for (size_t k = 0; k < m; ++k) {
      a_feeders[i]->ScheduleAt(
          i + k, Word::Element(a.tuple(i)[k], static_cast<sim::TupleTag>(i)));
    }
  }
  for (size_t j = 0; j < n_b; ++j) {
    for (size_t k = 0; k < m; ++k) {
      b_feeders[j]->ScheduleAt(
          j + k, Word::ElementB(b.tuple(j)[k], static_cast<sim::TupleTag>(j)));
    }
  }

  const size_t bound = 4 * (n_a + n_b + m) + 64;
  SYSTOLIC_RETURN_NOT_OK(simulator.RunUntilQuiescent(bound).status());

  // Probe pass: one FALSE seed per row, ORed across the row's cells.
  for (size_t i = 0; i < n_a; ++i) {
    probe_feeders[i]->ScheduleAt(
        simulator.cycle(),
        Word::Boolean(false, static_cast<sim::TupleTag>(i), sim::kNoTag));
  }
  SYSTOLIC_ASSIGN_OR_RETURN(size_t cycles,
                            simulator.RunUntilQuiescent(bound + n_b + 16));

  for (size_t i = 0; i < n_a; ++i) {
    if (sinks[i]->received().size() != 1) {
      return Status::Internal("stationary row " + std::to_string(i) +
                              " emitted " +
                              std::to_string(sinks[i]->received().size()) +
                              " probe results");
    }
    bits.Set(i, sinks[i]->received()[0].second.AsBool());
  }
  if (info != nullptr) {
    info->cycles = cycles;
    info->sim = simulator.Stats();
  }
  return bits;
}

}  // namespace arrays
}  // namespace systolic
